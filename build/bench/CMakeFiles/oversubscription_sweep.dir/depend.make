# Empty dependencies file for oversubscription_sweep.
# This may be replaced when dependencies are built.
