file(REMOVE_RECURSE
  "CMakeFiles/fig02_working_set.dir/fig02_working_set.cc.o"
  "CMakeFiles/fig02_working_set.dir/fig02_working_set.cc.o.d"
  "fig02_working_set"
  "fig02_working_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_working_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
