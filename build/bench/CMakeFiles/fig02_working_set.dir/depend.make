# Empty dependencies file for fig02_working_set.
# This may be replaced when dependencies are built.
