# Empty compiler generated dependencies file for fig05_liveness_seams.
# This may be replaced when dependencies are built.
