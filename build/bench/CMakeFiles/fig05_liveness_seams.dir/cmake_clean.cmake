file(REMOVE_RECURSE
  "CMakeFiles/fig05_liveness_seams.dir/fig05_liveness_seams.cc.o"
  "CMakeFiles/fig05_liveness_seams.dir/fig05_liveness_seams.cc.o.d"
  "fig05_liveness_seams"
  "fig05_liveness_seams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_liveness_seams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
