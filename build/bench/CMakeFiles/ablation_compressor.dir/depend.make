# Empty dependencies file for ablation_compressor.
# This may be replaced when dependencies are built.
