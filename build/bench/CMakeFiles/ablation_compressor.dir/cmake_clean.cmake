file(REMOVE_RECURSE
  "CMakeFiles/ablation_compressor.dir/ablation_compressor.cc.o"
  "CMakeFiles/ablation_compressor.dir/ablation_compressor.cc.o.d"
  "ablation_compressor"
  "ablation_compressor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
