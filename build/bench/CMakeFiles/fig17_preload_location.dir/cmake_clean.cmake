file(REMOVE_RECURSE
  "CMakeFiles/fig17_preload_location.dir/fig17_preload_location.cc.o"
  "CMakeFiles/fig17_preload_location.dir/fig17_preload_location.cc.o.d"
  "fig17_preload_location"
  "fig17_preload_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_preload_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
