# Empty compiler generated dependencies file for fig17_preload_location.
# This may be replaced when dependencies are built.
