file(REMOVE_RECURSE
  "CMakeFiles/table1_config.dir/table1_config.cc.o"
  "CMakeFiles/table1_config.dir/table1_config.cc.o.d"
  "table1_config"
  "table1_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
