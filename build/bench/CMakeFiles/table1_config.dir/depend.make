# Empty dependencies file for table1_config.
# This may be replaced when dependencies are built.
