file(REMOVE_RECURSE
  "CMakeFiles/fig13_pareto.dir/fig13_pareto.cc.o"
  "CMakeFiles/fig13_pareto.dir/fig13_pareto.cc.o.d"
  "fig13_pareto"
  "fig13_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
