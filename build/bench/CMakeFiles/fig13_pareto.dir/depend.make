# Empty dependencies file for fig13_pareto.
# This may be replaced when dependencies are built.
