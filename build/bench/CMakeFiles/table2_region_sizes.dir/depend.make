# Empty dependencies file for table2_region_sizes.
# This may be replaced when dependencies are built.
