file(REMOVE_RECURSE
  "CMakeFiles/table2_region_sizes.dir/table2_region_sizes.cc.o"
  "CMakeFiles/table2_region_sizes.dir/table2_region_sizes.cc.o.d"
  "table2_region_sizes"
  "table2_region_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_region_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
