#!/usr/bin/env bash
# Run clang-tidy over the first-party sources with the repo's
# .clang-tidy check set (see README "Linting"). Uses the compile
# database from the plain build, so run scripts/check.sh (or at least
# the cmake configure) first. Containers without clang-tidy skip
# cleanly: the check set is a companion lint, not a build requirement.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "tidy: clang-tidy not installed; skipping"
    exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

# First-party translation units only; gtest/benchmark sources pulled
# in by FetchContent live under the build tree and are excluded by
# construction.
mapfile -t sources < <(find src tools bench tests -name '*.cc' | sort)

clang-tidy -p "$BUILD_DIR" --quiet "${sources[@]}"
echo "tidy: ${#sources[@]} files clean under .clang-tidy"
