#!/usr/bin/env bash
# One-stop verification gate for the cycle-skip engine (DESIGN.md §12):
#   1. the tier-1 suite (plain build, ctest), which now runs with the
#      skip engine enabled by default;
#   2. the cycle-skip differential oracle (ctest label "oracle"):
#      skip-on vs skip-off byte-identity across the Rodinia set, every
#      registered provider, multi-SM thread counts, traces, and fault
#      plans;
#   3. the provider-registry contract suite (ctest label "providers"):
#      every registered provider end-to-end under the closed stall
#      account and memory-image invariants (DESIGN.md §13);
#   4. the fleet-safe cache suite (ctest label "cache"): chaos
#      injection under every CacheFaultPlan, forked multi-process
#      stress over one shared directory, and the --shard partition
#      parity oracle (DESIGN.md §15);
#   5. the multi-tenant suite (ctest label "tenants"): single-tenant
#      byte parity, per-tenant closed accounts, the preemption chaos
#      test, starved-tenant reporting, and QoS (DESIGN.md §16);
#   6. ASan and TSan passes over the skip-enabled determinism subset
#      (the SoA warp state and bulk stall-charging touch hot arrays;
#      the multi-SM epoch loop skips under worker threads).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

# Registry guard (DESIGN.md §13): the provider seam is cast-free.
# Consumers reach a provider through RegisterProvider virtuals or the
# registry's typed hooks, never through dynamic_cast probes — a probe
# is a provider the registry doesn't fully describe.
if grep -rn "dynamic_cast<[^>]*Provider" src tests bench examples tools; then
    echo "check: dynamic_cast on the provider seam; use a" \
         "RegisterProvider virtual or a registry hook instead" >&2
    exit 1
fi

# Finding-code guard: every compiler::Finding code declared in
# finding.hh must be exercised by at least one test, so a code can't
# silently decay into dead diagnostics nothing would catch regressing.
missing=0
for code in $(grep -o 'inline constexpr const char \*[A-Za-z]*' \
                   src/compiler/finding.hh |
                  sed 's/.*\*//' | sort -u); do
    if ! grep -rq "codes::$code" tests; then
        echo "check: finding code codes::$code has no test" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    exit 1
fi

# Static-analysis companion (scripts/tidy.sh): skips cleanly when
# clang-tidy is absent. REGLESS_TIDY=0 opts out, e.g. when iterating
# on a slow machine.
if [ "${REGLESS_TIDY:-1}" != "0" ]; then
    scripts/tidy.sh
fi

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j

(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")
(cd "$BUILD_DIR" && ctest --output-on-failure -L oracle -j "$(nproc)")
(cd "$BUILD_DIR" && ctest --output-on-failure -L providers -j "$(nproc)")
(cd "$BUILD_DIR" && ctest --output-on-failure -L cache -j "$(nproc)")
(cd "$BUILD_DIR" && ctest --output-on-failure -L tenants -j "$(nproc)")

# Skip-enabled determinism subset under AddressSanitizer: the oracle
# sweep plus the property fuzzer (random kernels + fault plans).
ASAN_DIR=${ASAN_BUILD_DIR:-build-asan}
cmake -B "$ASAN_DIR" -S . -DREGLESS_SANITIZE=address
cmake --build "$ASAN_DIR" -j --target regless_tests \
    --target regless_oracle_tests
"$ASAN_DIR"/tests/regless_oracle_tests \
    --gtest_filter='*CycleSkipOracle*:CycleSkip*'
"$ASAN_DIR"/tests/regless_tests --gtest_filter='*CycleSkipFuzz*'

# Same subset's parallel face under ThreadSanitizer: epoch-clamped
# skipping on worker threads must stay race-free.
TSAN_DIR=${TSAN_BUILD_DIR:-build-tsan}
cmake -B "$TSAN_DIR" -S . -DREGLESS_SANITIZE=thread
cmake --build "$TSAN_DIR" -j --target regless_oracle_tests
"$TSAN_DIR"/tests/regless_oracle_tests \
    --gtest_filter='*MultiSmCycleSkipOracle*'

echo "check: tier-1, oracle, asan, and tsan subsets all passed"
