#!/usr/bin/env sh
# Build, test, and regenerate every paper artifact.
set -eu
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "================================================================"
    echo "== $b"
    echo "================================================================"
    "$b"
    echo
done 2>&1 | tee bench_output.txt
./build/examples/generate_report results.md
echo "done: test_output.txt, bench_output.txt, results.md"
