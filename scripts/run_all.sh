#!/usr/bin/env sh
# Build, test, and regenerate every paper artifact.
set -eu
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
# One engine run for every figure: shared simulation points are
# deduplicated and cached in .regless-cache/ (DESIGN.md section 7).
./build/bench/regless_report 2>&1 | tee bench_output.txt
./build/bench/micro_components 2>&1 | tee -a bench_output.txt
./build/examples/generate_report results.md
echo "done: test_output.txt, bench_output.txt, results.md"
