#!/usr/bin/env sh
# Build and run the full paper report through the evaluation engine.
# Extra arguments go to regless_report, e.g.:
#   ./scripts/report.sh --filter fig16 --jobs 8
#   ./scripts/report.sh --no-cache --json report.json
#
# ./scripts/report.sh --smoke runs the fault drill instead: the
# cheapest figure plus one injected deadlock, verifying that a report
# always completes (exit 0) and diagnoses the failure in its footer,
# then the stall-breakdown figure, verifying the issue-slot
# attribution surfaces in a report.
set -eu
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build --target regless_report

if [ "${1:-}" = "--smoke" ]; then
    shift
    out=$(./build/bench/regless_report --filter fig03_backing_store \
        --no-cache --inject-deadlock "$@")
    printf '%s\n' "$out"
    printf '%s\n' "$out" | grep -q ' 1 deadlocked'
    printf '%s\n' "$out" | grep -q '^# deadlocked: '
    echo "smoke: report survived an injected deadlock"
    out=$(./build/bench/regless_report --filter stall_breakdown \
        --no-cache "$@")
    printf '%s\n' "$out"
    printf '%s\n' "$out" | grep -q 'Issue-slot stall attribution'
    printf '%s\n' "$out" | grep -q 'exactly one column'
    echo "smoke: stall-breakdown figure rendered"
    exit 0
fi

./build/bench/regless_report "$@"
