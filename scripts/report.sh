#!/usr/bin/env sh
# Build and run the full paper report through the evaluation engine.
# Extra arguments go to regless_report, e.g.:
#   ./scripts/report.sh --filter fig16 --jobs 8
#   ./scripts/report.sh --no-cache --json report.json
#
# ./scripts/report.sh --smoke runs the fault drill instead: the
# cheapest figure plus one injected deadlock, verifying that a report
# always completes (exit 0) and diagnoses the failure in its footer;
# the stall-breakdown figure, verifying the issue-slot attribution
# surfaces in a report; and the sharded-cache drill — two --shard
# partitions of one figure over a shared cache directory, a warm run
# that must simulate nothing, and a `regless_cache verify` audit of
# the directory the fleet left behind (DESIGN.md §15).
set -eu
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build --target regless_report --target regless_cache

if [ "${1:-}" = "--smoke" ]; then
    shift
    out=$(./build/bench/regless_report --filter fig03_backing_store \
        --no-cache --inject-deadlock "$@")
    printf '%s\n' "$out"
    printf '%s\n' "$out" | grep -q ' 1 deadlocked'
    printf '%s\n' "$out" | grep -q '^# deadlocked: '
    echo "smoke: report survived an injected deadlock"
    out=$(./build/bench/regless_report --filter stall_breakdown \
        --no-cache "$@")
    printf '%s\n' "$out"
    printf '%s\n' "$out" | grep -q 'Issue-slot stall attribution'
    printf '%s\n' "$out" | grep -q 'exactly one column'
    echo "smoke: stall-breakdown figure rendered"

    # Sharded-cache drill: split one figure across two shard runs
    # sharing a scratch cache directory, then a warm unsharded run
    # that must be served entirely from the cache the shards built.
    cachedir=$(mktemp -d "${TMPDIR:-/tmp}/regless-smoke-cache.XXXXXX")
    trap 'rm -rf "$cachedir"' EXIT
    ./build/bench/regless_report --filter fig03_backing_store \
        --cache-dir "$cachedir" --shard 1/2 "$@" > /dev/null
    ./build/bench/regless_report --filter fig03_backing_store \
        --cache-dir "$cachedir" --shard 2/2 "$@" > /dev/null
    out=$(./build/bench/regless_report --filter fig03_backing_store \
        --cache-dir "$cachedir" "$@")
    printf '%s\n' "$out"
    printf '%s\n' "$out" | grep -q ' 0 simulated,'
    printf '%s\n' "$out" | grep -q '^# cache: read-write'
    ./build/tools/regless_cache verify --strict --dir "$cachedir"
    ./build/tools/regless_cache gc --dry-run --dir "$cachedir"
    echo "smoke: shard union warmed the cache and verify is clean"
    exit 0
fi

./build/bench/regless_report "$@"
