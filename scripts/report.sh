#!/usr/bin/env sh
# Build and run the full paper report through the evaluation engine.
# Extra arguments go to regless_report, e.g.:
#   ./scripts/report.sh --filter fig16 --jobs 8
#   ./scripts/report.sh --no-cache --json report.json
set -eu
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build --target regless_report
./build/bench/regless_report "$@"
