#!/usr/bin/env bash
# Build with ThreadSanitizer and run the multi-SM determinism tests —
# the parallel executor's data-race check (see README "Sanitizers").
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}

cmake -B "$BUILD_DIR" -S . -DREGLESS_SANITIZE=thread
cmake --build "$BUILD_DIR" -j --target regless_tests

# The parallel executor and thread-pool suites; MultiSmTest covers the
# shared-DRAM path at its default thread count.
"$BUILD_DIR"/tests/regless_tests \
    --gtest_filter='*ThreadCountInvariance*:*ParallelStress*:MultiSmParallel.*:ThreadPoolTest.*:MultiSmTest.*'
echo "tsan: multi-SM tests passed with -fsanitize=thread"
