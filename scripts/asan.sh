#!/usr/bin/env bash
# Build with AddressSanitizer and run the verification-heavy suites:
# the staging checker walks compiler data structures that mutation
# tests deliberately corrupt, so this is where out-of-bounds reads
# would hide (see README "Sanitizers").
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . -DREGLESS_SANITIZE=address
cmake --build "$BUILD_DIR" -j --target regless_tests

# Static checker + mutants, runtime shadow checker, lint surface, and
# the OSU/CM data structures the shadow hooks into.
"$BUILD_DIR"/tests/regless_tests \
    --gtest_filter='StagingCheckerTest.*:ShadowCheckerTest.*:MutationHarness.*:*RodiniaLint*:*LintClean*:VerifierTest.*:CapacityManagerTest.*:ExperimentEngine.*'
echo "asan: verification suites passed with -fsanitize=address"
