/**
 * @file
 * Oversubscription demo: the paper's §7 observation that "RegLess
 * would be able to oversubscribe the register file without any design
 * changes".
 *
 * A register-hungry kernel (≈64 registers per warp) only fits 32 of 64
 * warps in a fixed 2048-entry register file, halving occupancy; the
 * RegLess staging unit names registers per region, so all 64 warps run
 * with a quarter of the storage.
 *
 *   ./build/examples/oversubscription
 */

#include <iostream>

#include "sim/experiment.hh"
#include "workloads/kernel_builder.hh"

using namespace regless;

namespace
{

/**
 * A kernel allocating many register *names* (which a fixed register
 * file must provision per resident warp) while keeping each live
 * window modest (which RegLess stages region by region). This is the
 * shape where name-space virtualisation wins: high static register
 * count, low instantaneous pressure.
 */
ir::Kernel
fatKernel()
{
    workloads::KernelBuilder b("fat_kernel");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId acc = b.reg();
    b.moviTo(acc, 0);
    // Straight-line phases, each with a fresh 12-register window:
    // ~120 allocated names, but at most ~15 live at once.
    for (int phase = 0; phase < 9; ++phase) {
        RegId v = b.ld(b.iadd(addr, b.movi(16384 * phase)));
        std::vector<RegId> window;
        for (int k = 0; k < 12; ++k)
            window.push_back(b.imad(v, b.movi(k + 2 + phase), t));
        while (window.size() > 1) {
            std::vector<RegId> next;
            for (std::size_t k = 0; k + 1 < window.size(); k += 2)
                next.push_back(b.iadd(window[k], window[k + 1]));
            if (window.size() % 2)
                next.push_back(window.back());
            window = std::move(next);
        }
        b.iaddTo(acc, acc, window[0]);
    }
    b.st(acc, addr, 1 << 22);
    return b.build();
}

} // namespace

int
runExample()
{
    ir::Kernel kernel = fatKernel();
    std::cout << "kernel uses " << kernel.numRegs()
              << " registers per warp; 64 warps need "
              << kernel.numRegs() * 64
              << " entries vs the baseline's 2048\n\n";

    sim::GpuConfig base_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    base_cfg.limitOccupancyByRf = true;
    sim::RunStats base = sim::runKernel(kernel, base_cfg);

    sim::GpuConfig rl_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    rl_cfg.limitOccupancyByRf = true; // no effect on RegLess
    sim::RunStats rl = sim::runKernel(kernel, rl_cfg);

    std::cout << "baseline (occupancy-limited): " << base.cycles
              << " cycles\n";
    std::cout << "regless (512-entry OSU, full occupancy): " << rl.cycles
              << " cycles\n";
    std::cout << "speedup from oversubscription: "
              << static_cast<double>(base.cycles) /
                     static_cast<double>(rl.cycles)
              << "x with 25% of the storage\n";
    return 0;
}

int
main()
{
    // Library code throws SimError; the example main is the
    // process-exit boundary.
    try {
        return runExample();
    } catch (const std::exception &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
