/**
 * @file
 * Pipeline viewer: a text timeline of every warp's capacity-manager
 * state over time — the paper's Figure 9 state machine, animated.
 * Each row is one warp, each column a sampling interval:
 *
 *   . inactive    p preloading    A active    d draining    # done
 *
 *   ./build/examples/pipeline_viewer [benchmark] [sample_cycles]
 */

#include <iostream>
#include <string>
#include <vector>

#include "regless/regless_provider.hh"
#include "sim/gpu_simulator.hh"
#include "workloads/rodinia.hh"

using namespace regless;

namespace
{

char
glyph(staging::CmState state)
{
    switch (state) {
      case staging::CmState::Inactive: return '.';
      case staging::CmState::Preloading: return 'p';
      case staging::CmState::Active: return 'A';
      case staging::CmState::Draining: return 'd';
      case staging::CmState::Done: return '#';
    }
    return '?';
}

} // namespace

int
runExample(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "srad_v1";
    unsigned sample = argc > 2
                          ? static_cast<unsigned>(std::stoul(argv[2]))
                          : 64;

    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    sim::GpuSimulator g(workloads::makeRodinia(name), cfg);
    auto &rp = static_cast<staging::ReglessProvider &>(g.provider());
    auto &sm = g.sm();

    std::vector<std::string> rows(cfg.sm.numWarps);
    std::vector<double> occupancy;
    while (!sm.done() && sm.now() < 2'000'000) {
        for (unsigned i = 0; i < sample && !sm.done(); ++i)
            sm.step();
        for (WarpId w = 0; w < cfg.sm.numWarps; ++w)
            rows[w].push_back(glyph(rp.cm(w % 4).state(w)));
        unsigned lines = 0;
        for (unsigned s = 0; s < rp.numShards(); ++s)
            lines += rp.osu(s).occupiedLines();
        occupancy.push_back(
            100.0 * lines /
            static_cast<double>(rp.config().osuEntriesPerSm));
    }

    std::cout << "# " << name << ": warp states every " << sample
              << " cycles (" << sm.now() << " cycles total)\n";
    std::cout << "# . inactive  p preloading  A active  d draining  "
                 "# done\n\n";
    for (WarpId w = 0; w < cfg.sm.numWarps; ++w) {
        if (w % 4 == 0 && w > 0)
            std::cout << "\n";
        std::cout << (w < 10 ? "w " : "w") << w << " " << rows[w]
                  << "\n";
    }
    std::cout << "\nOSU occupancy (%):";
    for (double o : occupancy)
        std::cout << " " << static_cast<int>(o);
    std::cout << "\n";
    return 0;
}

int
main(int argc, char **argv)
{
    // Library code throws SimError; the example main is the
    // process-exit boundary.
    try {
        return runExample(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
