/**
 * @file
 * Region explorer: dump the RegLess compiler's view of a kernel — the
 * disassembly, the live-register curve with its seams, the region
 * partition, and every hardware annotation (preload / erase / evict /
 * cache-invalidate). The window into paper section 4.
 *
 *   ./build/examples/region_explorer [benchmark]   (default: hotspot)
 */

#include <iostream>
#include <string>

#include "compiler/compiler.hh"
#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"
#include "workloads/rodinia.hh"

using namespace regless;

int
runExample(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "hotspot";
    ir::Kernel kernel = workloads::makeRodinia(name);

    std::cout << kernel.disassemble() << "\n";

    ir::CfgAnalysis cfg(kernel);
    ir::Liveness live(kernel, cfg);
    compiler::CompiledKernel ck = compiler::compile(kernel);

    std::cout << "=== regions (" << ck.regions().size() << ") ===\n";
    for (const compiler::Region &region : ck.regions()) {
        std::cout << region.toString() << "\n";
        for (const compiler::Preload &p : region.preloads) {
            std::cout << "    preload r" << p.reg
                      << (p.invalidate ? " (invalidating read)" : "")
                      << "\n";
        }
        for (RegId r : region.cacheInvalidations)
            std::cout << "    cache invalidate r" << r << "\n";
        for (const auto &[pc, regs] : region.erases) {
            for (RegId r : regs)
                std::cout << "    erase r" << r << " @ pc " << pc << "\n";
        }
        for (const auto &[pc, regs] : region.evicts) {
            for (RegId r : regs)
                std::cout << "    evict r" << r << " @ pc " << pc << "\n";
        }
        std::cout << "    metadata instructions: "
                  << region.metadataInsns << "\n";
    }

    std::cout << "\n=== summary ===\n";
    std::cout << "mean insns/region:   " << ck.meanInsnsPerRegion()
              << "\n";
    std::cout << "mean preloads/region: " << ck.meanPreloadsPerRegion()
              << "\n";
    std::cout << "mean max-live/region: " << ck.meanMaxLivePerRegion()
              << "\n";
    std::cout << "metadata instructions: " << ck.metadataInsns() << "\n";
    const auto &ls = ck.lifetimeStats();
    std::cout << "cross-region registers: " << ls.crossRegionRegs
              << ", edge deaths: " << ls.edgeDeathRegs
              << ", soft-def registers: " << ls.softDefRegs
              << ", unplaced invalidations: " << ls.unplacedInvalidations
              << "\n";
    return 0;
}

int
main(int argc, char **argv)
{
    // Library code throws SimError; the example main is the
    // process-exit boundary.
    try {
        return runExample(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
