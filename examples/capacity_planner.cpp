/**
 * @file
 * Capacity planner: for one workload, sweep the operand staging unit
 * capacity and report runtime, energy, and preload behaviour — the
 * per-application version of the paper's Figure 13 design-space study.
 * Useful for sizing an OSU for a known workload mix.
 *
 *   ./build/examples/capacity_planner [benchmark]   (default: srad_v1)
 */

#include <iomanip>
#include <iostream>
#include <string>

#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

using namespace regless;

int
runExample(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "srad_v1";

    sim::RunStats base = sim::runKernel(workloads::makeRodinia(name),
                                        sim::ProviderKind::Baseline);
    std::cout << "workload " << name << ": baseline " << base.cycles
              << " cycles, " << base.energy.total() / 1e6
              << " uJ total\n\n";
    std::cout << sim::cell("entries", 9) << sim::cell("KB", 6)
              << sim::cell("runtime", 9) << sim::cell("rf_energy", 11)
              << sim::cell("gpu_energy", 12)
              << sim::cell("osu_hit%", 10) << sim::cell("l1_req/kcyc", 12)
              << "\n";

    for (unsigned cap : {128u, 192u, 256u, 384u, 512u, 1024u, 2048u}) {
        sim::RunStats stats =
            sim::runRegless(workloads::makeRodinia(name), cap);
        double total_pre = static_cast<double>(stats.totalPreloads());
        double osu_pct =
            total_pre > 0 ? 100.0 * stats.preloadSrcOsu / total_pre : 100;
        double l1_per_kcyc =
            1000.0 *
            static_cast<double>(stats.l1PreloadReqs + stats.l1StoreReqs +
                                stats.l1InvalidateReqs) /
            static_cast<double>(stats.cycles);
        std::cout << sim::cell(static_cast<double>(cap), 9, 0)
                  << sim::cell(cap * regBytes / 1024.0, 6, 0)
                  << sim::cell(static_cast<double>(stats.cycles) /
                                   base.cycles,
                               9)
                  << sim::cell(stats.energy.registerStructures() /
                                   base.energy.registerStructures(),
                               11)
                  << sim::cell(stats.energy.total() /
                                   base.energy.total(),
                               12)
                  << sim::cell(osu_pct, 10, 1)
                  << sim::cell(l1_per_kcyc, 12, 2) << "\n";
    }
    std::cout << "\nPick the smallest capacity whose runtime column is "
                 "acceptable; the paper selects 512 for the full "
                 "Rodinia suite.\n";
    return 0;
}

int
main(int argc, char **argv)
{
    // Library code throws SimError; the example main is the
    // process-exit boundary.
    try {
        return runExample(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
