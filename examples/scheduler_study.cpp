/**
 * @file
 * Scheduler study: the Figure 2 insight, interactively. Runs the whole
 * Rodinia suite under GTO, two-level, and round-robin scheduling on
 * the baseline register file and reports the per-100-cycle register
 * working set and runtime — the observation that motivates activating
 * only a subset of warps (paper section 2.1).
 *
 *   ./build/examples/scheduler_study
 */

#include <iostream>
#include <vector>

#include "common/stats.hh"
#include "sim/experiment.hh"
#include "workloads/rodinia.hh"

using namespace regless;

namespace
{

struct Row
{
    double working_set_kb;
    double runtime;
};

Row
runWith(const std::string &name, arch::SchedulerPolicy policy,
        double base_cycles)
{
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    cfg.sm.scheduler = policy;
    sim::RunStats stats =
        sim::runKernel(workloads::makeRodinia(name), cfg);
    return Row{stats.meanWorkingSetBytes / 1024.0,
               static_cast<double>(stats.cycles) / base_cycles};
}

} // namespace

int
runExample()
{
    std::cout << sim::cell("benchmark", 18) << sim::cell("gto_ws", 9)
              << sim::cell("2lvl_ws", 9) << sim::cell("rr_ws", 9)
              << sim::cell("2lvl_rt", 9) << sim::cell("rr_rt", 9)
              << "\n";

    std::vector<double> ws_ratio, rt_two;
    for (const auto &name : workloads::rodiniaNames()) {
        sim::RunStats base = sim::runKernel(workloads::makeRodinia(name),
                                            sim::ProviderKind::Baseline);
        double base_cycles = static_cast<double>(base.cycles);
        Row gto{base.meanWorkingSetBytes / 1024.0, 1.0};
        Row two = runWith(name, arch::SchedulerPolicy::TwoLevel,
                          base_cycles);
        Row rr = runWith(name, arch::SchedulerPolicy::Rr, base_cycles);
        std::cout << sim::cell(name, 18)
                  << sim::cell(gto.working_set_kb, 9, 1)
                  << sim::cell(two.working_set_kb, 9, 1)
                  << sim::cell(rr.working_set_kb, 9, 1)
                  << sim::cell(two.runtime, 9) << sim::cell(rr.runtime, 9)
                  << "\n";
        if (gto.working_set_kb > 0)
            ws_ratio.push_back(two.working_set_kb / gto.working_set_kb);
        rt_two.push_back(two.runtime);
    }
    std::cout << "\nTwo-level vs GTO: working set x"
              << geomean(ws_ratio) << ", runtime x" << geomean(rt_two)
              << "\n";
    std::cout << "The two-level scheduler shrinks the register working "
                 "set (good for a small staging unit) but costs "
                 "performance — RegLess instead gates warps with the "
                 "capacity manager and keeps GTO.\n";
    return 0;
}

int
main()
{
    // Library code throws SimError; the example main is the
    // process-exit boundary.
    try {
        return runExample();
    } catch (const std::exception &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
