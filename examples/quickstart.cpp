/**
 * @file
 * Quickstart: build a small GPU kernel with the builder DSL, compile
 * it with the RegLess compiler, run it on the simulated SM under both
 * the baseline register file and RegLess, and compare the results.
 *
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "workloads/kernel_builder.hh"

using namespace regless;

int
runExample()
{
    // 1. Write a kernel: out[i] = in[i] * in[i] + i, for 2048 threads.
    workloads::KernelBuilder b("square_plus_tid");
    RegId tid = b.tid();
    RegId addr = b.imuli(tid, 4);
    RegId value = b.ld(addr);
    RegId squared = b.imul(value, value);
    RegId result = b.iadd(squared, tid);
    b.st(result, addr, 65536);
    ir::Kernel kernel = b.build();

    // 2. Compile: the RegLess compiler splits the kernel into regions
    //    and annotates register lifetimes.
    compiler::CompiledKernel ck = compiler::compile(kernel);
    std::cout << "Kernel '" << kernel.name() << "': "
              << kernel.numInsns() << " instructions, "
              << ck.regions().size() << " regions\n";
    std::cout << ck.describeRegions() << "\n";

    // 3. Run under the baseline register file and under RegLess.
    sim::RunStats base =
        sim::runKernel(kernel, sim::ProviderKind::Baseline);
    sim::RunStats rl = sim::runKernel(kernel, sim::ProviderKind::Regless);

    std::cout << "baseline: " << base.cycles << " cycles, RF energy "
              << base.energy.registerStructures() / 1e6 << " uJ\n";
    std::cout << "regless:  " << rl.cycles << " cycles, staging energy "
              << rl.energy.registerStructures() / 1e6 << " uJ\n";
    std::cout << "register-structure energy ratio: "
              << rl.energy.registerStructures() /
                     base.energy.registerStructures()
              << " (paper: ~0.25)\n";
    std::cout << "preloads served by OSU: " << rl.preloadSrcOsu << " / "
              << rl.totalPreloads() << "\n";

    // 4. Verify functional equivalence through memory contents.
    sim::GpuConfig base_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    sim::GpuConfig rl_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    sim::GpuSimulator base_sim(kernel, base_cfg);
    sim::GpuSimulator rl_sim(kernel, rl_cfg);
    base_sim.run();
    rl_sim.run();
    unsigned mismatches = 0;
    for (unsigned t = 0; t < 2048; ++t) {
        Addr a = base_cfg.sm.dataBase + 4 * t + 65536;
        if (base_sim.memory().readWord(a) != rl_sim.memory().readWord(a))
            ++mismatches;
    }
    std::cout << "output mismatches vs baseline: " << mismatches
              << " (expect 0)\n";
    return mismatches == 0 ? 0 : 1;
}

int
main()
{
    // Library code throws SimError; the example main is the
    // process-exit boundary.
    try {
        return runExample();
    } catch (const std::exception &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
