/**
 * @file
 * Command-line simulator driver: run any built-in benchmark or a
 * kernel written in the text assembly format under any operand-storage
 * design, and print run statistics.
 *
 *   regless_sim --bench hotspot --provider regless --capacity 512
 *   regless_sim --asm mykernel.rasm --provider baseline --dump-stats
 *   regless_sim --bench lud --dump-asm
 *   regless_sim --list
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/logging.hh"
#include "compiler/name_compactor.hh"
#include "ir/assembler.hh"
#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "sim/provider_registry.hh"
#include "sim/stats_io.hh"
#include "workloads/rodinia.hh"

using namespace regless;

namespace
{

std::string
providerNameList()
{
    std::string names;
    for (const sim::ProviderDescriptor &d : sim::providerRegistry()) {
        if (!names.empty())
            names += " | ";
        names += d.name;
    }
    return names;
}

void
usage()
{
    std::cout <<
        "usage: regless_sim [options]\n"
        "  --bench <name>       built-in benchmark (see --list)\n"
        "  --asm <file>         kernel in text assembly\n"
        "  --provider <p>       " << providerNameList() << "\n"
        "                       (default regless)\n"
        "  --capacity <n>       OSU entries per SM (default 512)\n"
        "  --scale <n>          workload scale factor (default 1)\n"
        "  --limit-occupancy    model RF occupancy limits\n"
        "  --compact            compact register names first\n"
        "  --dump-asm           print the kernel as assembly and exit\n"
        "  --dump-regions       print the region partition and exit\n"
        "  --dump-stats         print raw component statistics\n"
        "  --json               print RunStats as JSON\n"
        "  --list               list built-in benchmarks\n";
}

sim::ProviderKind
parseProvider(const std::string &name)
{
    sim::ProviderKind kind;
    if (!sim::tryProviderFromName(name, kind))
        fatal("unknown provider '", name, "' (expected ",
              providerNameList(), ")");
    return kind;
}

} // namespace

int
runExample(int argc, char **argv)
{
    std::string bench;
    std::string asm_file;
    sim::ProviderKind provider = sim::ProviderKind::Regless;
    unsigned capacity = 512;
    unsigned scale = 1;
    bool limit_occupancy = false;
    bool compact = false;
    bool dump_asm = false;
    bool dump_regions = false;
    bool dump_stats = false;
    bool as_json = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("option ", arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--bench")
            bench = next();
        else if (arg == "--asm")
            asm_file = next();
        else if (arg == "--provider")
            provider = parseProvider(next());
        else if (arg == "--capacity")
            capacity = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--scale")
            scale = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--limit-occupancy")
            limit_occupancy = true;
        else if (arg == "--compact")
            compact = true;
        else if (arg == "--dump-asm")
            dump_asm = true;
        else if (arg == "--dump-regions")
            dump_regions = true;
        else if (arg == "--dump-stats")
            dump_stats = true;
        else if (arg == "--json")
            as_json = true;
        else if (arg == "--list") {
            for (const auto &name : workloads::rodiniaNames())
                std::cout << name << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '", arg, "'");
        }
    }

    if (bench.empty() == asm_file.empty()) {
        usage();
        fatal("pass exactly one of --bench or --asm");
    }

    ir::Kernel kernel = bench.empty()
                            ? ir::assembleFile(asm_file)
                            : workloads::makeRodinia(bench, scale);
    if (compact) {
        compiler::CompactionResult result =
            compiler::compactNames(kernel);
        std::cout << "# compacted " << result.originalRegs << " -> "
                  << result.compactedRegs << " register names\n";
        kernel = std::move(result.kernel);
    }

    if (dump_asm) {
        std::cout << ir::disassembleToAsm(kernel);
        return 0;
    }

    sim::GpuConfig cfg = sim::GpuConfig::forProvider(provider);
    cfg.setOsuCapacity(capacity);
    cfg.limitOccupancyByRf = limit_occupancy;
    sim::GpuSimulator simulator(kernel, cfg);

    if (dump_regions) {
        std::cout << simulator.compiled().describeRegions();
        return 0;
    }

    sim::RunStats stats = simulator.run();
    if (as_json) {
        sim::writeJson(std::cout, stats);
        std::cout << "\n";
        return 0;
    }
    std::cout << "kernel          " << stats.kernel << "\n";
    std::cout << "provider        " << sim::providerName(provider)
              << "\n";
    std::cout << "cycles          " << stats.cycles << "\n";
    std::cout << "instructions    " << stats.insns << " (ipc "
              << static_cast<double>(stats.insns) / stats.cycles
              << ")\n";
    std::cout << "reg energy      "
              << stats.energy.registerStructures() / 1e6 << " uJ\n";
    std::cout << "total energy    " << stats.energy.total() / 1e6
              << " uJ\n";
    if (provider == sim::ProviderKind::Regless ||
        provider == sim::ProviderKind::ReglessNoCompressor) {
        std::cout << "preloads        " << stats.totalPreloads()
                  << " (osu " << stats.preloadSrcOsu << ", compressor "
                  << stats.preloadSrcCompressor << ", l1 "
                  << stats.preloadSrcL1 << ", l2/dram "
                  << stats.preloadSrcL2Dram << ")\n";
        std::cout << "metadata insns  " << stats.metadataInsns << "\n";
        std::cout << "regions         " << stats.numRegions
                  << " static, " << stats.staticInsnsPerRegion
                  << " insns each; " << stats.regionCyclesMean
                  << " cycles active\n";
    }
    if (dump_stats) {
        std::cout << "\n--- raw statistics ---\n";
        simulator.dumpStats(std::cout);
    }
    return 0;
}

int
main(int argc, char **argv)
{
    // Library code throws SimError; the example main is the
    // process-exit boundary.
    try {
        return runExample(argc, argv);
    } catch (const std::exception &e) {
        std::cerr << "fatal: " << e.what() << "\n";
        return 1;
    }
}
