/**
 * @file
 * Tests for the path-sensitive staging-state checker: every Rodinia
 * kernel must lint clean, and each finding code must fire on a
 * hand-corrupted mutant of a real compiled kernel. Mutants are built
 * the same way test_tools.cc corrupts regions: copy the region list,
 * break one invariant, and rebuild a CompiledKernel around it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "compiler/compiler.hh"
#include "compiler/staging_checker.hh"
#include "compiler/verifier.hh"
#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"
#include "regless/operand_staging_unit.hh"
#include "regless/shadow_checker.hh"
#include "sim/gpu_config.hh"
#include "sim/gpu_simulator.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

bool
hasCode(const std::vector<compiler::Finding> &findings, const char *code)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&](const compiler::Finding &f) {
                           return f.code == code;
                       });
}

std::string
codesOf(const std::vector<compiler::Finding> &findings)
{
    std::string out;
    for (const compiler::Finding &f : findings)
        out += f.toString() + "\n";
    return out;
}

compiler::CompiledKernel
rebuild(const compiler::CompiledKernel &ck,
        std::vector<compiler::Region> regions)
{
    return compiler::CompiledKernel(ck.kernel(), std::move(regions),
                                    ck.lifetimeStats(),
                                    ck.metadataInsns());
}

/**
 * First Rodinia kernel (in registry order) with a region satisfying
 * @a eligible; fails the calling test when none exists.
 */
template <typename Pred>
std::pair<compiler::CompiledKernel, std::size_t>
findKernelWith(Pred eligible)
{
    for (const std::string &name : workloads::rodiniaNames()) {
        compiler::CompiledKernel ck =
            compiler::compile(workloads::makeRodinia(name));
        for (std::size_t i = 0; i < ck.regions().size(); ++i) {
            if (eligible(ck, ck.regions()[i]))
                return {std::move(ck), i};
        }
    }
    ADD_FAILURE() << "no Rodinia kernel has an eligible region";
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("nn"));
    return {std::move(ck), 0};
}

/** Registers referenced (read or written) inside @a region. */
std::vector<RegId>
regionRefs(const compiler::CompiledKernel &ck,
           const compiler::Region &region)
{
    std::vector<RegId> refs;
    for (Pc pc = region.startPc; pc <= region.endPc; ++pc) {
        const ir::Instruction &insn = ck.kernel().insn(pc);
        for (RegId r : insn.srcs())
            refs.push_back(r);
        if (insn.writesReg())
            refs.push_back(insn.dst());
    }
    std::sort(refs.begin(), refs.end());
    refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
    return refs;
}

class RodiniaLint : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RodiniaLint, CompiledKernelIsClean)
{
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia(GetParam()));
    std::vector<compiler::Finding> findings =
        compiler::lintCompiledKernel(ck);
    EXPECT_TRUE(findings.empty()) << codesOf(findings);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, RodiniaLint,
    ::testing::ValuesIn(workloads::rodiniaNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(StagingCheckerTest, DropPreloadReportsUnstagedRead)
{
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &,
           const compiler::Region &region) {
            return !region.preloads.empty();
        });
    auto regions = ck.regions();
    const RegId reg = regions[idx].preloads.front().reg;
    regions[idx].preloads.erase(regions[idx].preloads.begin());
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::readUnstaged))
        << "dropped preload of r" << reg << ":\n"
        << codesOf(findings);
}

TEST(StagingCheckerTest, PreloadOfUndefinedValueReported)
{
    // At the kernel entry every register is abstractly Undef, so any
    // preload added to the entry region reads a never-defined value.
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("nn"));
    auto regions = ck.regions();
    const compiler::RegionId entry = ck.regionAt(0);
    regions[entry].preloads.push_back(compiler::Preload{0, false});
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::preloadUndef))
        << codesOf(findings);
}

TEST(StagingCheckerTest, FlipInvalidateOnLiveValueReported)
{
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &k,
           const compiler::Region &region) {
            ir::CfgAnalysis cfg(k.kernel());
            ir::Liveness live(k.kernel(), cfg);
            for (const compiler::Preload &p : region.preloads) {
                if (!p.invalidate && live.liveAfter(region.endPc, p.reg))
                    return true;
            }
            return false;
        });
    ir::CfgAnalysis cfg(ck.kernel());
    ir::Liveness live(ck.kernel(), cfg);
    auto regions = ck.regions();
    for (compiler::Preload &p : regions[idx].preloads) {
        if (!p.invalidate &&
            live.liveAfter(regions[idx].endPc, p.reg)) {
            p.invalidate = true;
            break;
        }
    }
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::invalidateLive))
        << codesOf(findings);
}

TEST(StagingCheckerTest, BogusCacheInvalidationReported)
{
    // Inputs are live into their region by definition, so invalidating
    // one on activation destroys a value the region needs.
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &,
           const compiler::Region &region) {
            return !region.inputs.empty();
        });
    auto regions = ck.regions();
    regions[idx].cacheInvalidations.push_back(
        regions[idx].inputs.front());
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::invalidateLive))
        << codesOf(findings);
}

TEST(StagingCheckerTest, DropEraseReportsLeakedLine)
{
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &,
           const compiler::Region &region) {
            return !region.erases.empty();
        });
    auto regions = ck.regions();
    auto it = regions[idx].erases.begin();
    const RegId reg = it->second.front();
    it->second.erase(it->second.begin());
    if (it->second.empty())
        regions[idx].erases.erase(it);
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::leakedLine))
        << "dropped erase of r" << reg << ":\n"
        << codesOf(findings);
}

TEST(StagingCheckerTest, DropEvictReportsLeakedLine)
{
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &,
           const compiler::Region &region) {
            return !region.evicts.empty();
        });
    auto regions = ck.regions();
    auto it = regions[idx].evicts.begin();
    it->second.erase(it->second.begin());
    if (it->second.empty())
        regions[idx].evicts.erase(it);
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::leakedLine))
        << codesOf(findings);
}

TEST(StagingCheckerTest, EraseOfLiveValueReported)
{
    // Turn an evict of a region output (live after the region, backed
    // up on eviction) into an erase (line dropped, value destroyed).
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &k,
           const compiler::Region &region) {
            ir::CfgAnalysis cfg(k.kernel());
            ir::Liveness live(k.kernel(), cfg);
            for (const auto &[pc, regs] : region.evicts) {
                for (RegId r : regs) {
                    if (live.liveAfter(pc, r) && !live.hasSoftDef(r))
                        return true;
                }
            }
            return false;
        });
    ir::CfgAnalysis cfg(ck.kernel());
    ir::Liveness live(ck.kernel(), cfg);
    auto regions = ck.regions();
    bool mutated = false;
    for (auto &[pc, regs] : regions[idx].evicts) {
        for (auto rit = regs.begin(); rit != regs.end(); ++rit) {
            if (live.liveAfter(pc, *rit) && !live.hasSoftDef(*rit)) {
                regions[idx].erases[pc].push_back(*rit);
                regs.erase(rit);
                mutated = true;
                break;
            }
        }
        if (mutated)
            break;
    }
    ASSERT_TRUE(mutated);
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::eraseLive))
        << codesOf(findings);
}

TEST(StagingCheckerTest, EraseOfUnstagedRegisterReported)
{
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &k,
           const compiler::Region &region) {
            return regionRefs(k, region).size() < k.kernel().numRegs();
        });
    auto regions = ck.regions();
    const std::vector<RegId> refs = regionRefs(ck, regions[idx]);
    RegId untouched = invalidReg;
    for (RegId r = 0; r < ck.kernel().numRegs(); ++r) {
        if (!std::binary_search(refs.begin(), refs.end(), r)) {
            untouched = r;
            break;
        }
    }
    ASSERT_NE(untouched, invalidReg);
    regions[idx].erases[regions[idx].startPc].push_back(untouched);
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::eraseUnstaged))
        << codesOf(findings);
}

TEST(StagingCheckerTest, EvictOfUnstagedRegisterReported)
{
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &k,
           const compiler::Region &region) {
            return regionRefs(k, region).size() < k.kernel().numRegs();
        });
    auto regions = ck.regions();
    const std::vector<RegId> refs = regionRefs(ck, regions[idx]);
    RegId untouched = invalidReg;
    for (RegId r = 0; r < ck.kernel().numRegs(); ++r) {
        if (!std::binary_search(refs.begin(), refs.end(), r)) {
            untouched = r;
            break;
        }
    }
    ASSERT_NE(untouched, invalidReg);
    regions[idx].evicts[regions[idx].startPc].push_back(untouched);
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::evictUnstaged))
        << codesOf(findings);
}

TEST(StagingCheckerTest, ReadAfterEraseReported)
{
    // Move an interior register's erase from its last touch up to its
    // defining instruction: every read in between now sees a dropped
    // line.
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &k,
           const compiler::Region &region) {
            for (const auto &[pc, regs] : region.erases) {
                for (RegId r : regs) {
                    for (Pc d = region.startPc; d < pc; ++d) {
                        const ir::Instruction &insn = k.kernel().insn(d);
                        if (insn.writesReg() && insn.dst() == r)
                            return true;
                    }
                }
            }
            return false;
        });
    auto regions = ck.regions();
    compiler::Region &region = regions[idx];
    bool mutated = false;
    for (auto &[pc, regs] : region.erases) {
        for (auto rit = regs.begin(); rit != regs.end() && !mutated;
             ++rit) {
            for (Pc d = region.startPc; d < pc; ++d) {
                const ir::Instruction &insn = ck.kernel().insn(d);
                if (insn.writesReg() && insn.dst() == *rit) {
                    region.erases[d].push_back(*rit);
                    regs.erase(rit);
                    mutated = true;
                    break;
                }
            }
        }
        if (mutated)
            break;
    }
    ASSERT_TRUE(mutated);
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::readAfterErase))
        << codesOf(findings);
}

TEST(StagingCheckerTest, ReadAfterInvalidateReported)
{
    // Replace a preload with a cache invalidation of the same register:
    // the region then reads a value it just destroyed.
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &,
           const compiler::Region &region) {
            return !region.preloads.empty();
        });
    auto regions = ck.regions();
    const RegId reg = regions[idx].preloads.front().reg;
    regions[idx].preloads.erase(regions[idx].preloads.begin());
    regions[idx].cacheInvalidations.push_back(reg);
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::readAfterInvalidate))
        << codesOf(findings);
}

TEST(StagingCheckerTest, ErasedValuePreloadedDownstreamReported)
{
    // A bogus erase at the end of one region turns the next region's
    // preload of the same register into a use-after-free.
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &k,
           const compiler::Region &region) {
            const ir::BasicBlock &block =
                k.kernel().block(k.kernel().blockOf(region.endPc));
            if (region.endPc == block.lastPc())
                return false;
            const compiler::RegionId next =
                k.regionAt(region.endPc + 1);
            return !k.region(next).preloads.empty();
        });
    auto regions = ck.regions();
    const compiler::RegionId next = ck.regionAt(regions[idx].endPc + 1);
    const RegId reg = regions[next].preloads.front().reg;
    regions[idx].erases[regions[idx].endPc].push_back(reg);
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::preloadErased))
        << codesOf(findings);
}

TEST(StagingCheckerTest, ShrunkMaxLiveReportsUnderclaim)
{
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &,
           const compiler::Region &region) {
            return region.maxLive > 0;
        });
    auto regions = ck.regions();
    --regions[idx].maxLive;
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::capacityUnderclaim))
        << codesOf(findings);
}

TEST(StagingCheckerTest, UnderclaimedBankReportsUnderclaim)
{
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &,
           const compiler::Region &region) {
            for (unsigned b = 0; b < compiler::numOsuBanks; ++b) {
                if (region.bankUsage[b] > 0)
                    return true;
            }
            return false;
        });
    auto regions = ck.regions();
    for (unsigned b = 0; b < compiler::numOsuBanks; ++b) {
        if (regions[idx].bankUsage[b] > 0) {
            --regions[idx].bankUsage[b];
            break;
        }
    }
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::capacityUnderclaim))
        << codesOf(findings);
}

TEST(StagingCheckerTest, MutantsAreReportedOnceNotPerPath)
{
    // The reporting replay deduplicates by (code, region, pc, reg): a
    // single dropped preload must not flood the output with one
    // finding per fixpoint visit.
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &,
           const compiler::Region &region) {
            return !region.preloads.empty();
        });
    auto regions = ck.regions();
    const RegId reg = regions[idx].preloads.front().reg;
    regions[idx].preloads.erase(regions[idx].preloads.begin());
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    unsigned dup = 0;
    for (const compiler::Finding &a : findings) {
        for (const compiler::Finding &b : findings) {
            if (&a != &b && a.code == b.code && a.region == b.region &&
                a.pc == b.pc && a.reg == b.reg) {
                ++dup;
            }
        }
    }
    EXPECT_EQ(dup, 0u) << "for dropped preload of r" << reg << ":\n"
                       << codesOf(findings);
}

/* ---- structural verifier codes, one ctor-safe mutant each ---- */

TEST(VerifierTest, InvertedRegionBoundsReported)
{
    // A region whose startPc exceeds its endPc covers nothing; the
    // CompiledKernel ctor tolerates it (the cover loop never runs) but
    // the verifier must flag it before anything else trusts it.
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &,
           const compiler::Region &region) {
            return region.startPc < region.endPc;
        });
    auto regions = ck.regions();
    compiler::Region bogus = regions[idx];
    std::swap(bogus.startPc, bogus.endPc);
    regions.push_back(bogus);
    std::vector<compiler::Finding> findings = compiler::verifyStructure(
        rebuild(ck, std::move(regions)), /*check_load_use=*/true);
    EXPECT_TRUE(hasCode(findings, compiler::codes::regionBounds))
        << codesOf(findings);
}

TEST(VerifierTest, RegionSpanningBlockBoundaryReported)
{
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &k,
           const compiler::Region &region) {
            return region.endPc + 1 < k.kernel().numInsns() &&
                   k.kernel().blockOf(region.endPc + 1) !=
                       k.kernel().blockOf(region.endPc);
        });
    auto regions = ck.regions();
    ++regions[idx].endPc;
    std::vector<compiler::Finding> findings = compiler::verifyStructure(
        rebuild(ck, std::move(regions)), true);
    EXPECT_TRUE(hasCode(findings, compiler::codes::regionSpansBlock))
        << codesOf(findings);
}

TEST(VerifierTest, OverlappingRegionStartsReported)
{
    // Two regions claiming the same startPc cannot both satisfy the
    // pc-to-region map: whichever loses the map write is reported.
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &k,
           const compiler::Region &region) {
            return region.endPc + 1 < k.kernel().numInsns();
        });
    auto regions = ck.regions();
    const compiler::RegionId next = ck.regionAt(regions[idx].endPc + 1);
    regions[next].startPc = regions[idx].startPc;
    std::vector<compiler::Finding> findings = compiler::verifyStructure(
        rebuild(ck, std::move(regions)), true);
    EXPECT_TRUE(hasCode(findings, compiler::codes::regionIdMap))
        << codesOf(findings);
}

TEST(VerifierTest, DoubleCoveredPcReported)
{
    // Extend a region one pc into its successor without crossing a
    // block boundary: that pc is now covered twice, and only the
    // coverage invariant is violated.
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &k,
           const compiler::Region &region) {
            return region.endPc + 1 < k.kernel().numInsns() &&
                   k.kernel().blockOf(region.endPc + 1) ==
                       k.kernel().blockOf(region.endPc);
        });
    auto regions = ck.regions();
    ++regions[idx].endPc;
    std::vector<compiler::Finding> findings = compiler::verifyStructure(
        rebuild(ck, std::move(regions)), true);
    EXPECT_TRUE(hasCode(findings, compiler::codes::coverage))
        << codesOf(findings);
    EXPECT_FALSE(hasCode(findings, compiler::codes::regionSpansBlock))
        << codesOf(findings);
}

TEST(VerifierTest, UnreferencedInputReported)
{
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &k,
           const compiler::Region &region) {
            return regionRefs(k, region).size() < k.kernel().numRegs();
        });
    auto regions = ck.regions();
    const std::vector<RegId> refs = regionRefs(ck, regions[idx]);
    for (RegId r = 0; r < ck.kernel().numRegs(); ++r) {
        if (!std::binary_search(refs.begin(), refs.end(), r)) {
            regions[idx].inputs.push_back(r);
            break;
        }
    }
    std::vector<compiler::Finding> findings = compiler::verifyStructure(
        rebuild(ck, std::move(regions)), true);
    EXPECT_TRUE(hasCode(findings, compiler::codes::classification))
        << codesOf(findings);
}

TEST(VerifierTest, PreloadOfNonInputReported)
{
    // Preloading an interior register leaves the region's input
    // classification intact but breaks preloads == inputs.
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &,
           const compiler::Region &region) {
            return !region.interiors.empty();
        });
    auto regions = ck.regions();
    regions[idx].preloads.push_back(
        compiler::Preload{regions[idx].interiors.front(), false});
    std::vector<compiler::Finding> findings = compiler::verifyStructure(
        rebuild(ck, std::move(regions)), true);
    EXPECT_TRUE(hasCode(findings, compiler::codes::preloadSet))
        << codesOf(findings);
    EXPECT_FALSE(hasCode(findings, compiler::codes::classification))
        << codesOf(findings);
}

TEST(VerifierTest, EraseOfNonInteriorReported)
{
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &,
           const compiler::Region &region) {
            return !region.inputs.empty();
        });
    auto regions = ck.regions();
    regions[idx].erases[regions[idx].startPc].push_back(
        regions[idx].inputs.front());
    std::vector<compiler::Finding> findings = compiler::verifyStructure(
        rebuild(ck, std::move(regions)), true);
    EXPECT_TRUE(hasCode(findings, compiler::codes::erasePlacement))
        << codesOf(findings);
}

TEST(VerifierTest, EvictOfInteriorReported)
{
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &,
           const compiler::Region &region) {
            return !region.interiors.empty();
        });
    auto regions = ck.regions();
    regions[idx].evicts[regions[idx].endPc].push_back(
        regions[idx].interiors.front());
    std::vector<compiler::Finding> findings = compiler::verifyStructure(
        rebuild(ck, std::move(regions)), true);
    EXPECT_TRUE(hasCode(findings, compiler::codes::evictPlacement))
        << codesOf(findings);
}

TEST(VerifierTest, InflatedMaxLiveReported)
{
    // The complement of ShrunkMaxLiveReportsUnderclaim: over-claiming
    // maxLive no longer matches the recomputed occupancy either.
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("nn"));
    auto regions = ck.regions();
    ++regions.front().maxLive;
    std::vector<compiler::Finding> findings = compiler::verifyStructure(
        rebuild(ck, std::move(regions)), true);
    EXPECT_TRUE(hasCode(findings, compiler::codes::capacityMismatch))
        << codesOf(findings);
}

TEST(VerifierTest, UnsplitLoadUseReported)
{
    // Compiling with load/use splitting disabled leaves some region
    // holding a global load together with its first use — exactly what
    // the check_load_use pass exists to flag.
    compiler::CompilerConfig config;
    config.splitLoadUse = false;
    bool flagged = false;
    for (const std::string &name : workloads::rodiniaNames()) {
        compiler::CompiledKernel ck =
            compiler::compile(workloads::makeRodinia(name), config);
        flagged = flagged ||
                  hasCode(compiler::verifyStructure(ck, true),
                          compiler::codes::loadUseSplit);
    }
    EXPECT_TRUE(flagged)
        << "no Rodinia kernel keeps a load with its use when "
           "splitting is off";
}

TEST(VerifierTest, MissingMetadataReported)
{
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("nn"));
    auto regions = ck.regions();
    regions.front().metadataInsns = 0;
    std::vector<compiler::Finding> findings = compiler::verifyStructure(
        rebuild(ck, std::move(regions)), true);
    EXPECT_TRUE(hasCode(findings, compiler::codes::metadataMissing))
        << codesOf(findings);
}

TEST(StagingCheckerTest, EraseOfSoftDefValueReported)
{
    // Erasing a register a later soft definition merges into destroys
    // the lanes the partial write would have kept (Algorithm 2).
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &k,
           const compiler::Region &region) {
            ir::CfgAnalysis cfg(k.kernel());
            ir::Liveness live(k.kernel(), cfg);
            for (const auto &[pc, regs] : region.evicts) {
                for (RegId r : regs) {
                    if (live.liveAfter(pc, r) && live.hasSoftDef(r))
                        return true;
                }
            }
            return false;
        });
    ir::CfgAnalysis cfg(ck.kernel());
    ir::Liveness live(ck.kernel(), cfg);
    auto regions = ck.regions();
    bool mutated = false;
    for (auto &[pc, regs] : regions[idx].evicts) {
        for (auto rit = regs.begin(); rit != regs.end(); ++rit) {
            if (live.liveAfter(pc, *rit) && live.hasSoftDef(*rit)) {
                regions[idx].erases[pc].push_back(*rit);
                regs.erase(rit);
                mutated = true;
                break;
            }
        }
        if (mutated)
            break;
    }
    ASSERT_TRUE(mutated);
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::eraseSoftDef))
        << codesOf(findings);
}

TEST(StagingCheckerTest, InvalidatedValuePreloadedDownstreamReported)
{
    // Invalidating the cached copy of a value a later region preloads
    // is the cache-side twin of ErasedValuePreloadedDownstream.
    auto [ck, idx] = findKernelWith(
        [](const compiler::CompiledKernel &k,
           const compiler::Region &region) {
            const ir::BasicBlock &block =
                k.kernel().block(k.kernel().blockOf(region.endPc));
            if (region.endPc == block.lastPc())
                return false;
            const compiler::RegionId next =
                k.regionAt(region.endPc + 1);
            return !k.region(next).preloads.empty();
        });
    auto regions = ck.regions();
    const compiler::RegionId next = ck.regionAt(regions[idx].endPc + 1);
    const RegId reg = regions[next].preloads.front().reg;
    regions[next].cacheInvalidations.push_back(reg);
    std::vector<compiler::Finding> findings =
        compiler::checkStagingStates(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::preloadInvalidated))
        << codesOf(findings);
}

/** The dynamic shadow checker agrees with the static verdict: clean. */
TEST(ShadowCheckerTest, RuntimeCleanOnRodiniaUnderPressure)
{
    for (const std::string &name : {std::string("nn"),
                                    std::string("backprop"),
                                    std::string("heartwall")}) {
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
        cfg.regless.runtimeCheck = true;
        cfg.setOsuCapacity(128); // stress reclaims
        sim::GpuSimulator gpu(workloads::makeRodinia(name), cfg);
        gpu.run();
        std::vector<compiler::Finding> violations =
            gpu.runtimeViolations();
        EXPECT_TRUE(violations.empty())
            << name << ":\n"
            << codesOf(violations);
    }
}

/**
 * First pc in @a ck whose instruction reads at least one register,
 * with one such register; the runtime read checks key off these.
 */
std::pair<Pc, RegId>
firstReadingPc(const compiler::CompiledKernel &ck)
{
    for (Pc pc = 0; pc < ck.kernel().numInsns(); ++pc) {
        std::vector<RegId> used =
            ir::Liveness::usedRegs(ck.kernel().insn(pc));
        if (!used.empty())
            return {pc, used.front()};
    }
    ADD_FAILURE() << "kernel reads no registers";
    return {0, 0};
}

TEST(ShadowCheckerTest, ReadOfErasedValueIsARuntimeViolation)
{
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("nn"));
    staging::ShadowChecker checker(ck);
    staging::OperandStagingUnit osu(
        "osu", 64, staging::VictimOrder::FreeCleanDirty);
    auto [pc, reg] = firstReadingPc(ck);
    checker.onErase(0, reg);
    checker.onIssue(0, pc, ck.kernel().insn(pc), osu, ck.regionAt(pc));
    EXPECT_TRUE(hasCode(checker.violations(),
                        compiler::codes::rtReadAfterErase))
        << codesOf(checker.violations());
}

TEST(ShadowCheckerTest, ReadOfInvalidatedValueIsARuntimeViolation)
{
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("nn"));
    staging::ShadowChecker checker(ck);
    staging::OperandStagingUnit osu(
        "osu", 64, staging::VictimOrder::FreeCleanDirty);
    auto [pc, reg] = firstReadingPc(ck);
    // The backing copy vanished while the line was NOT resident: the
    // value is gone on both paths.
    checker.onBackingInvalidate(0, reg, /*resident=*/false);
    checker.onIssue(0, pc, ck.kernel().insn(pc), osu, ck.regionAt(pc));
    EXPECT_TRUE(hasCode(checker.violations(),
                        compiler::codes::rtReadAfterInvalidate))
        << codesOf(checker.violations());
}

TEST(ShadowCheckerTest, ReadOfUnstagedOperandIsARuntimeViolation)
{
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("nn"));
    staging::ShadowChecker checker(ck);
    // An empty OSU: the operand was never staged, yet the value was
    // never destroyed either — the softest of the three read codes.
    staging::OperandStagingUnit osu(
        "osu", 64, staging::VictimOrder::FreeCleanDirty);
    auto [pc, reg] = firstReadingPc(ck);
    checker.onIssue(0, pc, ck.kernel().insn(pc), osu, ck.regionAt(pc));
    EXPECT_TRUE(hasCode(checker.violations(),
                        compiler::codes::rtReadUnstaged))
        << codesOf(checker.violations());
    EXPECT_FALSE(hasCode(checker.violations(),
                         compiler::codes::rtReadAfterErase))
        << codesOf(checker.violations());
}

} // namespace
} // namespace regless
