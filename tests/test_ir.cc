/**
 * @file
 * Unit tests for the IR: instruction semantics, CFG construction,
 * dominators/postdominators, loops, and the kernel-builder DSL.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "ir/cfg_analysis.hh"
#include "ir/kernel.hh"
#include "workloads/kernel_builder.hh"

namespace regless
{
namespace
{

using ir::LaneValues;
using ir::Opcode;
using workloads::KernelBuilder;
using workloads::Label;

LaneValues
lanes(std::uint32_t base, std::uint32_t stride)
{
    LaneValues v{};
    for (unsigned i = 0; i < warpSize; ++i)
        v[i] = base + i * stride;
    return v;
}

TEST(InstructionTest, IntegerArithmetic)
{
    ir::Instruction add(Opcode::IAdd, 0, {1, 2});
    LaneValues out = add.evaluate({lanes(10, 1), lanes(5, 2)});
    for (unsigned i = 0; i < warpSize; ++i)
        EXPECT_EQ(out[i], 15 + i * 3);

    ir::Instruction mad(Opcode::IMad, 0, {1, 2, 3});
    out = mad.evaluate({lanes(2, 0), lanes(3, 0), lanes(1, 1)});
    for (unsigned i = 0; i < warpSize; ++i)
        EXPECT_EQ(out[i], 6 + 1 + i);
}

TEST(InstructionTest, ImmediateForms)
{
    ir::Instruction movi(Opcode::MovImm, 0, {}, 77);
    LaneValues out = movi.evaluate({});
    for (unsigned i = 0; i < warpSize; ++i)
        EXPECT_EQ(out[i], 77u);

    ir::Instruction addi(Opcode::IAddImm, 0, {1}, 5);
    out = addi.evaluate({lanes(0, 1)});
    for (unsigned i = 0; i < warpSize; ++i)
        EXPECT_EQ(out[i], i + 5);
}

TEST(InstructionTest, TidProducesLaneIndexPlusOffset)
{
    ir::Instruction t(Opcode::Tid, 0, {}, 64);
    LaneValues out = t.evaluate({});
    for (unsigned i = 0; i < warpSize; ++i)
        EXPECT_EQ(out[i], 64 + i);
}

TEST(InstructionTest, FloatArithmeticBitCasts)
{
    auto fbits = [](float f) {
        std::uint32_t b;
        std::memcpy(&b, &f, 4);
        return b;
    };
    LaneValues a{}, b{};
    for (unsigned i = 0; i < warpSize; ++i) {
        a[i] = fbits(1.5f);
        b[i] = fbits(2.5f);
    }
    ir::Instruction fadd(Opcode::FAdd, 0, {1, 2});
    LaneValues out = fadd.evaluate({a, b});
    EXPECT_EQ(out[0], fbits(4.0f));

    ir::Instruction fmul(Opcode::FMul, 0, {1, 2});
    out = fmul.evaluate({a, b});
    EXPECT_EQ(out[3], fbits(3.75f));
}

TEST(InstructionTest, Comparisons)
{
    ir::Instruction lt(Opcode::SetLt, 0, {1, 2});
    LaneValues out = lt.evaluate({lanes(0, 1), lanes(16, 0)});
    for (unsigned i = 0; i < warpSize; ++i)
        EXPECT_EQ(out[i], i < 16 ? 1u : 0u);

    // Signed comparison: -1 < 1.
    LaneValues neg{}, pos{};
    for (unsigned i = 0; i < warpSize; ++i) {
        neg[i] = 0xffffffffu;
        pos[i] = 1;
    }
    out = lt.evaluate({neg, pos});
    EXPECT_EQ(out[0], 1u);
}

TEST(InstructionTest, SelpPicksPerLane)
{
    ir::Instruction selp(Opcode::Selp, 0, {1, 2, 3});
    LaneValues pred{};
    for (unsigned i = 0; i < warpSize; ++i)
        pred[i] = i % 2;
    LaneValues out = selp.evaluate({lanes(100, 0), lanes(200, 0), pred});
    for (unsigned i = 0; i < warpSize; ++i)
        EXPECT_EQ(out[i], i % 2 ? 100u : 200u);
}

TEST(InstructionTest, Classification)
{
    ir::Instruction ld(Opcode::LdGlobal, 0, {1}, 0);
    EXPECT_TRUE(ld.isGlobalLoad());
    EXPECT_TRUE(ld.isMemAccess());
    EXPECT_FALSE(ld.isBlockTerminator());
    EXPECT_EQ(ld.fuClass(), ir::FuClass::Mem);

    ir::Instruction bra(Opcode::Bra, invalidReg, {3}, 0, 7);
    EXPECT_TRUE(bra.isBranch());
    EXPECT_TRUE(bra.isBlockTerminator());
    EXPECT_FALSE(bra.writesReg());
    EXPECT_EQ(bra.fuClass(), ir::FuClass::Control);

    ir::Instruction rcp(Opcode::Rcp, 0, {1});
    EXPECT_EQ(rcp.fuClass(), ir::FuClass::Sfu);
}

TEST(InstructionTest, ToStringMentionsOperands)
{
    ir::Instruction add(Opcode::IAdd, 4, {1, 2});
    std::string s = add.toString();
    EXPECT_NE(s.find("iadd"), std::string::npos);
    EXPECT_NE(s.find("r4"), std::string::npos);
    EXPECT_NE(s.find("r1"), std::string::npos);
}

TEST(KernelTest, StraightLineSingleBlock)
{
    KernelBuilder b("straight");
    RegId t = b.tid();
    RegId x = b.iaddi(t, 1);
    RegId y = b.imul(x, t);
    b.st(y, t);
    ir::Kernel k = b.build();

    EXPECT_EQ(k.blocks().size(), 1u);
    EXPECT_EQ(k.block(0).firstPc(), 0u);
    EXPECT_EQ(k.block(0).lastPc(), k.numInsns() - 1);
    EXPECT_GE(k.numRegs(), 3u);
}

TEST(KernelTest, DiamondCfg)
{
    // if (tid < 8) x = 1 else x = 2; store x
    KernelBuilder b("diamond");
    RegId t = b.tid();
    RegId limit = b.movi(8);
    RegId p = b.setLt(t, limit);
    Label else_l = b.newLabel();
    Label join_l = b.newLabel();
    RegId x = b.reg();
    RegId notp = b.setEq(p, b.movi(0));
    b.braIf(notp, else_l);
    b.moviTo(x, 1);
    b.jmp(join_l);
    b.bind(else_l);
    b.moviTo(x, 2);
    b.bind(join_l);
    b.st(x, t);
    ir::Kernel k = b.build();

    // Expect: entry, then-block, else-block, join.
    EXPECT_EQ(k.blocks().size(), 4u);
    const ir::BasicBlock &entry = k.block(0);
    ASSERT_EQ(entry.successors().size(), 2u);

    ir::CfgAnalysis cfg(k);
    ir::BlockId join = k.blockOf(k.numInsns() - 1);
    EXPECT_TRUE(cfg.dominates(0, join));
    EXPECT_TRUE(cfg.postdominates(join, 0));
    EXPECT_FALSE(cfg.dominates(entry.successors()[0], join));
    EXPECT_TRUE(cfg.backEdges().empty());
    for (const ir::BasicBlock &bb : k.blocks())
        EXPECT_TRUE(cfg.reachable(bb.id()));
}

TEST(KernelTest, LoopHasBackEdge)
{
    // for (i = 0; i < 10; ++i) acc += i
    KernelBuilder b("loop");
    RegId i = b.reg();
    RegId acc = b.reg();
    b.moviTo(i, 0);
    b.moviTo(acc, 0);
    RegId limit = b.movi(10);
    Label head = b.newLabel();
    b.bind(head);
    b.iaddTo(acc, acc, i);
    b.iaddiTo(i, i, 1);
    RegId p = b.setLt(i, limit);
    b.braIf(p, head);
    b.st(acc, i);
    ir::Kernel k = b.build();

    ir::CfgAnalysis cfg(k);
    ASSERT_EQ(cfg.backEdges().size(), 1u);
    auto [from, to] = cfg.backEdges()[0];
    EXPECT_TRUE(cfg.dominates(to, from));
    EXPECT_TRUE(cfg.inAnyLoop(from));
    EXPECT_TRUE(cfg.inAnyLoop(to));
    // The loop body blocks are in the natural loop.
    auto loop = cfg.naturalLoop(from, to);
    EXPECT_GE(loop.size(), 1u);
}

TEST(KernelTest, BlockOfMapsEveryPc)
{
    KernelBuilder b("map");
    RegId t = b.tid();
    Label skip = b.newLabel();
    RegId p = b.setLt(t, b.movi(4));
    b.braIf(p, skip);
    b.st(t, t);
    b.bind(skip);
    ir::Kernel k = b.build();
    for (Pc pc = 0; pc < k.numInsns(); ++pc) {
        ir::BlockId bb = k.blockOf(pc);
        EXPECT_TRUE(k.block(bb).contains(pc));
    }
}

TEST(KernelTest, DisassembleMentionsName)
{
    KernelBuilder b("dis");
    b.st(b.tid(), b.movi(0));
    ir::Kernel k = b.build();
    EXPECT_NE(k.disassemble().find("dis"), std::string::npos);
}

TEST(KernelBuilderTest, AppendsExitWhenMissing)
{
    KernelBuilder b("noexit");
    b.st(b.tid(), b.movi(0));
    ir::Kernel k = b.build();
    EXPECT_TRUE(k.instructions().back().isExit());
}

TEST(KernelBuilderTest, BarrierTerminatesBlock)
{
    KernelBuilder b("barrier");
    RegId t = b.tid();
    b.bar();
    b.st(t, t);
    ir::Kernel k = b.build();
    EXPECT_GE(k.blocks().size(), 2u);
    // The barrier block falls through to the next block.
    ir::BlockId bar_bb = k.blockOf(1);
    ASSERT_EQ(k.block(bar_bb).successors().size(), 1u);
}

TEST(CfgAnalysisTest, UnreachableBlockDetected)
{
    // jmp over a dead block.
    KernelBuilder b("dead");
    RegId t = b.tid();
    Label after = b.newLabel();
    b.jmp(after);
    b.st(t, t); // unreachable
    b.bind(after);
    b.st(t, t);
    ir::Kernel k = b.build();
    ir::CfgAnalysis cfg(k);
    ir::BlockId dead = k.blockOf(2);
    EXPECT_FALSE(cfg.reachable(dead));
    EXPECT_TRUE(cfg.reachable(0));
}

} // namespace
} // namespace regless
