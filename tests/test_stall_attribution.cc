/**
 * @file
 * Stall-attribution tests (DESIGN.md section 10): every scheduler
 * slot of every cycle is charged to exactly one bucket — issued or
 * one of the eight stall causes — so per SM the buckets must sum to
 * numSchedulers * cycles on every workload and provider. Also covers
 * the Chrome-trace emission (validity, determinism of traced runs)
 * and the deadlock report's last-window breakdown.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "arch/stall.hh"
#include "common/fault_injector.hh"
#include "common/sim_error.hh"
#include "golden_runs.hh"
#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "sim/multi_sm.hh"
#include "sim/trace_writer.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

using testutil::expectSlotInvariant;
using testutil::totalSlots;

TEST(SlotInvariant, HoldsForEveryWorkloadUnderBaseline)
{
    // The memoized skip-off references; the skip-on counterpart of
    // this sweep lives in the cycle-skip oracle suite.
    const unsigned schedulers =
        testutil::referenceConfig(sim::ProviderKind::Baseline)
            .sm.numSchedulers;
    for (const std::string &name : workloads::rodiniaNames()) {
        expectSlotInvariant(
            testutil::goldenRun(name, sim::ProviderKind::Baseline),
            schedulers, name);
    }
}

TEST(SlotInvariant, HoldsForEveryWorkloadUnderRegless)
{
    const unsigned schedulers =
        testutil::referenceConfig(sim::ProviderKind::Regless)
            .sm.numSchedulers;
    for (const std::string &name : workloads::rodiniaNames()) {
        expectSlotInvariant(
            testutil::goldenRun(name, sim::ProviderKind::Regless),
            schedulers, name);
    }
}

TEST(SlotInvariant, HoldsPerSmInMultiSmRuns)
{
    const sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    for (const char *name : {"nn", "backprop"}) {
        sim::MultiSmSimulator multi(workloads::makeRodinia(name), cfg,
                                    /*num_sms=*/2);
        sim::RunStats total = multi.run();
        std::uint64_t issued = 0, stalled = 0;
        for (const sim::RunStats &per : multi.perSm()) {
            // The invariant holds per SM against that SM's own cycle
            // count, not the aggregate maximum.
            expectSlotInvariant(per, cfg.sm.numSchedulers,
                                std::string(name) + " per-SM");
            issued += per.issuedSlots;
            for (std::uint64_t s : per.stallSlots)
                stalled += s;
        }
        EXPECT_EQ(total.issuedSlots, issued) << name;
        EXPECT_EQ(totalSlots(total), issued + stalled) << name;
    }
}

TEST(StallTrace, TracedRunStatsMatchUntracedExactly)
{
    // Tracing is observational: enabling it must not change a single
    // statistic (operator== covers every field, slots included).
    const ir::Kernel kernel = workloads::makeRodinia("nn");
    sim::GpuConfig plain =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    sim::GpuConfig traced = plain;
    traced.trace.enabled = true;
    traced.trace.path =
        (std::filesystem::path(::testing::TempDir()) /
         "regless-traced-run.json")
            .string();
    sim::RunStats a = sim::runKernel(kernel, plain);
    sim::RunStats b = sim::runKernel(kernel, traced);
    EXPECT_TRUE(a == b);
}

TEST(StallTrace, MultiSmStatsAreThreadCountInvariant)
{
    // Byte-identical RunStats (slot fields included) for any worker
    // thread count with tracing off.
    const ir::Kernel kernel = workloads::makeRodinia("backprop");
    const sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    sim::MultiSmSimulator serial(kernel, cfg, /*num_sms=*/4,
                                 /*threads=*/1);
    sim::MultiSmSimulator threaded(kernel, cfg, /*num_sms=*/4,
                                   /*threads=*/3);
    sim::RunStats a = serial.run();
    sim::RunStats b = threaded.run();
    EXPECT_TRUE(a == b);
    ASSERT_EQ(serial.perSm().size(), threaded.perSm().size());
    for (std::size_t i = 0; i < serial.perSm().size(); ++i)
        EXPECT_TRUE(serial.perSm()[i] == threaded.perSm()[i]) << i;
}

TEST(StallTrace, WrittenFileIsValidChromeTrace)
{
    const std::string stem =
        (std::filesystem::path(::testing::TempDir()) /
         "regless-trace-test.json")
            .string();
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    cfg.trace.enabled = true;
    cfg.trace.path = stem;
    sim::GpuSimulator gpu(workloads::makeRodinia("nn"), cfg);
    gpu.run();

    std::ifstream in(stem + ".sm0", std::ios::binary);
    ASSERT_TRUE(in.good()) << stem << ".sm0 missing";
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    EXPECT_TRUE(sim::validateChromeTrace(text.str(), &error)) << error;
    // Both event kinds made it out: warp-state spans and capacity-
    // manager activation instants.
    EXPECT_NE(text.str().find("\"issue\""), std::string::npos);
    EXPECT_NE(text.str().find("cm_activate"), std::string::npos);
    EXPECT_NE(text.str().find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.str().find("\"ph\":\"i\""), std::string::npos);
}

TEST(StallTrace, ValidatorRejectsMalformedTraces)
{
    std::string error;
    EXPECT_FALSE(sim::validateChromeTrace("not json", &error));
    EXPECT_FALSE(sim::validateChromeTrace("{\"traceEvents\":[", &error));
    // Missing dur on a complete event.
    EXPECT_FALSE(sim::validateChromeTrace(
        "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"pid\":0,"
        "\"tid\":0,\"ts\":1}]}",
        &error));
    // Non-monotonic timestamps.
    EXPECT_FALSE(sim::validateChromeTrace(
        "{\"traceEvents\":["
        "{\"name\":\"a\",\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":5,"
        "\"s\":\"t\"},"
        "{\"name\":\"b\",\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":4,"
        "\"s\":\"t\"}]}",
        &error));
    EXPECT_TRUE(sim::validateChromeTrace("{\"traceEvents\":[]}",
                                         &error))
        << error;
}

TEST(StallTrace, TraceConfigIsPartOfTheConfigFingerprint)
{
    // Traced and untraced runs must never share an experiment-cache
    // entry, so the trace settings are part of the canonical text.
    sim::GpuConfig plain =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    sim::GpuConfig traced = plain;
    traced.trace.enabled = true;
    EXPECT_NE(sim::configCanonicalText(plain),
              sim::configCanonicalText(traced));
    sim::GpuConfig other_path = traced;
    other_path.trace.path = "elsewhere.json";
    EXPECT_NE(sim::configCanonicalText(traced),
              sim::configCanonicalText(other_path));
}

TEST(DeadlockBreakdown, NamesTheDominantCauseOfTheStalledWindow)
{
    // An injected OSU-slot leak starves every activation: the watchdog
    // report's last-window breakdown must be present, account only
    // stall (not issue) slots in the window, and name cm_no_capacity
    // as the dominant cause.
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    cfg.faults.kind = FaultPlan::Kind::LeakOsuSlot;
    cfg.faults.triggerCycle = 0;
    cfg.sm.watchdogWindow = 5000;
    cfg.sm.maxCycles = 2'000'000;
    sim::GpuSimulator gpu(workloads::makeRodinia("nn"), cfg);
    try {
        gpu.run();
        FAIL() << "leaked OSU reservations did not deadlock";
    } catch (const sim::DeadlockError &e) {
        const sim::DeadlockReport &r = e.report();
        ASSERT_FALSE(r.stallBreakdown.empty());
        EXPECT_EQ(r.dominantStall, "cm_no_capacity")
            << r.render();
        bool found = false;
        for (const std::string &line : r.stallBreakdown)
            found = found || line.find("cm_no_capacity") !=
                                 std::string::npos;
        EXPECT_TRUE(found) << r.render();
        // The rendering surfaces the section.
        EXPECT_NE(r.render().find("last-window stall breakdown"),
                  std::string::npos);
    }
}

} // namespace
} // namespace regless
