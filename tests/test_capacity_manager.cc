/**
 * @file
 * Capacity-manager state-machine tests, driven through a real SM so
 * warp state and annotations are authentic: activation gating,
 * per-bank reservations, drain behaviour, occupancy-limited residency,
 * and conservation invariants checked every cycle.
 */

#include <gtest/gtest.h>

#include "arch/sm.hh"
#include "compiler/compiler.hh"
#include "mem/memory_system.hh"
#include "regfile/baseline_rf.hh"
#include "regless/regless_provider.hh"
#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "workloads/kernel_builder.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

using staging::CmState;
using staging::osuBanks;
using staging::ReglessConfig;
using staging::ReglessProvider;
using workloads::KernelBuilder;

struct CmRun
{
    explicit CmRun(ir::Kernel k,
                   ReglessConfig rcfg = ReglessConfig(),
                   arch::SmConfig scfg = arch::SmConfig())
        : ck(compiler::compile(k)),
          mem(),
          provider(ck, mem, rcfg, scfg.numWarps),
          sm(ck, mem, provider, scfg)
    {
        provider.setWarpSource(
            [this](WarpId w) -> const arch::Warp & {
                return sm.warp(w);
            });
    }
    compiler::CompiledKernel ck;
    mem::MemorySystem mem;
    ReglessProvider provider;
    arch::Sm sm;
};

ir::Kernel
twoRegionKernel()
{
    KernelBuilder b("two_region");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId v = b.ld(addr);
    RegId w = b.iaddi(v, 1);
    b.st(w, addr, 65536);
    return b.build();
}

TEST(CmStateTest, WarpsStartInactiveThenActivate)
{
    CmRun run(twoRegionKernel());
    // Before any tick nothing is active.
    unsigned active0 = 0;
    for (WarpId w = 0; w < 64; ++w)
        active0 += run.provider.cm(w % 4).state(w) == CmState::Active;
    EXPECT_EQ(active0, 0u);

    // After a few cycles the capacity managers activate warps.
    for (int i = 0; i < 20; ++i)
        run.sm.step();
    unsigned active = 0;
    for (WarpId w = 0; w < 64; ++w)
        active += run.provider.cm(w % 4).state(w) == CmState::Active;
    EXPECT_GT(active, 0u);
}

TEST(CmStateTest, AllWarpsReachDoneState)
{
    CmRun run(twoRegionKernel());
    run.sm.run();
    for (WarpId w = 0; w < 64; ++w)
        EXPECT_EQ(run.provider.cm(w % 4).state(w), CmState::Done);
    // And the OSUs are completely empty.
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_EQ(run.provider.osu(s).occupiedLines(), 0u);
}

TEST(CmInvariantTest, ReservationsNeverExceedAvailability)
{
    // Step a capacity-stressed run and verify, every cycle, that each
    // bank's reserved-but-unallocated lines fit in what is reclaimable.
    ReglessConfig rcfg;
    rcfg.osuEntriesPerSm = 128;
    arch::SmConfig scfg;
    sim::GpuConfig gc = sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    gc.setOsuCapacity(128);

    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("dwt2d"), gc.compiler);
    mem::MemorySystem mem;
    rcfg.osuEntriesPerSm = 128;
    ReglessProvider provider(ck, mem, rcfg, scfg.numWarps);
    arch::Sm sm(ck, mem, provider, scfg);
    provider.setWarpSource(
        [&sm](WarpId w) -> const arch::Warp & { return sm.warp(w); });

    for (int cycle = 0; cycle < 150000 && !sm.done(); ++cycle) {
        sm.step();
        for (unsigned s = 0; s < 4; ++s) {
            for (unsigned b = 0; b < osuBanks; ++b) {
                auto c = provider.osu(s).bankCounts(b);
                int avail = static_cast<int>(c.free + c.clean + c.dirty);
                ASSERT_GE(avail, provider.cm(s).reservedFuture(b))
                    << "cycle " << cycle << " shard " << s << " bank "
                    << b;
            }
        }
    }
    EXPECT_TRUE(sm.done());
}

TEST(CmInvariantTest, BankOccupancyNeverExceedsLines)
{
    CmRun run(workloads::makeRodinia("heartwall"));
    unsigned lines = run.provider.osu(0).linesPerBank();
    for (int cycle = 0; cycle < 20000 && !run.sm.done(); ++cycle) {
        run.sm.step();
        for (unsigned s = 0; s < 4; ++s) {
            for (unsigned b = 0; b < osuBanks; ++b) {
                auto c = run.provider.osu(s).bankCounts(b);
                ASSERT_EQ(c.owned + c.clean + c.dirty + c.free, lines);
            }
        }
    }
    EXPECT_TRUE(run.sm.done());
}

TEST(CmStateTest, ActiveWarpsBoundedByCapacity)
{
    // With 128 entries (4 lines/bank/shard) only a few warps can hold
    // regions simultaneously.
    ReglessConfig rcfg;
    rcfg.osuEntriesPerSm = 128;
    sim::GpuConfig gc =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    gc.setOsuCapacity(128);
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("lud"), gc.compiler);
    mem::MemorySystem mem;
    ReglessProvider provider(ck, mem, rcfg, 64);
    arch::SmConfig scfg;
    arch::Sm sm(ck, mem, provider, scfg);
    provider.setWarpSource(
        [&sm](WarpId w) -> const arch::Warp & { return sm.warp(w); });

    unsigned peak_active = 0;
    for (int cycle = 0; cycle < 30000 && !sm.done(); ++cycle) {
        sm.step();
        unsigned active = 0;
        for (WarpId w = 0; w < 64; ++w) {
            CmState s = provider.cm(w % 4).state(w);
            active += (s == CmState::Active || s == CmState::Preloading ||
                       s == CmState::Draining);
        }
        peak_active = std::max(peak_active, active);
    }
    EXPECT_TRUE(sm.done());
    EXPECT_LT(peak_active, 48u); // far below all 64
    EXPECT_GT(peak_active, 2u);
}

TEST(CmStateTest, MetadataCountedPerActivation)
{
    CmRun run(twoRegionKernel());
    run.sm.run();
    std::uint64_t meta = 0, activations = 0;
    for (unsigned s = 0; s < 4; ++s) {
        meta += run.provider.cm(s).stats().counter("metadata_insns")
                    .value();
        activations +=
            run.provider.cm(s).stats().counter("activations").value();
    }
    EXPECT_GT(meta, 0u);
    EXPECT_GE(meta, activations); // >= 1 metadata insn per region
}

TEST(OccupancyTest, ResidencyLimitsBaselineButNotRegless)
{
    // ~40 names per warp -> a 256-entry RF fits few warps.
    KernelBuilder b("occupancy");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId acc = b.movi(0);
    for (int k = 0; k < 36; ++k)
        acc = b.iadd(acc, b.iaddi(t, k));
    b.st(acc, addr);
    ir::Kernel kernel = b.build();

    sim::GpuConfig limited =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    limited.baselineRfEntries = 256;
    limited.limitOccupancyByRf = true;
    sim::GpuConfig unlimited =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);

    sim::RunStats slow = sim::runKernel(kernel, limited);
    sim::RunStats fast = sim::runKernel(kernel, unlimited);
    EXPECT_GT(slow.cycles, fast.cycles);
    // Same amount of work either way.
    EXPECT_EQ(slow.insns, fast.insns);

    // RegLess is never residency-limited.
    sim::GpuConfig rl =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    rl.baselineRfEntries = 256;
    rl.limitOccupancyByRf = true;
    sim::RunStats rl_stats = sim::runKernel(kernel, rl);
    EXPECT_LT(rl_stats.cycles, slow.cycles);
}

TEST(OccupancyTest, BarrierKernelsSafeUnderResidencyLimit)
{
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    cfg.limitOccupancyByRf = true;
    cfg.baselineRfEntries = 128; // extreme: one block at a time
    sim::RunStats stats =
        sim::runKernel(workloads::makeRodinia("pathfinder"), cfg);
    EXPECT_GT(stats.cycles, 0u); // completed: no barrier deadlock
}

} // namespace
} // namespace regless
