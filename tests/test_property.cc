/**
 * @file
 * Property-based differential tests: randomly generated (but always
 * valid) kernels must produce byte-identical architectural results
 * under the baseline register file and under RegLess, across OSU
 * capacities, compressor settings, and activation policies. This is
 * the strongest invariant in the repository: operand staging must be
 * semantically invisible.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "workloads/kernel_builder.hh"

namespace regless
{
namespace
{

using workloads::KernelBuilder;
using workloads::Label;

/**
 * Generate a random, guaranteed-valid kernel: every register is
 * written before it is read, loops are counted, branches reconverge,
 * and all addresses stay inside a bounded data window.
 */
ir::Kernel
randomKernel(std::uint64_t seed)
{
    Rng rng(seed);
    KernelBuilder b("prop_" + std::to_string(seed));

    RegId tid = b.tid();
    RegId addr = b.imuli(tid, 4);
    std::vector<RegId> pool{tid, addr};
    auto any = [&]() -> RegId {
        return pool[rng.nextBelow(pool.size())];
    };
    unsigned store_segment = 0;

    const unsigned segments = 2 + rng.nextBelow(4);
    for (unsigned seg = 0; seg < segments; ++seg) {
        switch (rng.nextBelow(4)) {
          case 0: {
            // Straight-line arithmetic.
            unsigned n = 2 + rng.nextBelow(6);
            for (unsigned i = 0; i < n; ++i) {
                RegId a = any(), c = any();
                switch (rng.nextBelow(5)) {
                  case 0: pool.push_back(b.iadd(a, c)); break;
                  case 1: pool.push_back(b.imul(a, c)); break;
                  case 2: pool.push_back(b.bxor(a, c)); break;
                  case 3: pool.push_back(b.imin(a, c)); break;
                  default:
                    pool.push_back(
                        b.iaddi(a, rng.nextRange(-100, 100)));
                }
            }
            break;
          }
          case 1: {
            // Load, combine, store.
            RegId masked = b.band(any(), b.movi(8191));
            RegId la = b.imuli(masked, 4);
            RegId v = b.ld(la, 1 << 16);
            RegId sum = b.iadd(v, any());
            pool.push_back(sum);
            b.st(sum, addr, (2u << 20) + 16384 * store_segment++);
            break;
          }
          case 2: {
            // Diamond with divergent sides.
            RegId bit = b.band(tid, b.movi(1 + rng.nextBelow(7)));
            RegId p = b.setNe(bit, b.movi(0));
            Label else_l = b.newLabel();
            Label join = b.newLabel();
            RegId shared = b.reg();
            RegId np = b.setEq(p, b.movi(0));
            b.braIf(np, else_l);
            b.iaddTo(shared, any(), any());
            b.jmp(join);
            b.bind(else_l);
            b.iaddTo(shared, any(), b.movi(rng.nextRange(1, 50)));
            b.bind(join);
            pool.push_back(shared);
            break;
          }
          default: {
            // Counted loop with a loop-carried accumulator and,
            // sometimes, a divergent conditional in the body (the
            // soft-definition-inside-loop corner).
            RegId acc = b.reg();
            b.movTo(acc, any());
            RegId i = b.reg();
            b.moviTo(i, 0);
            RegId limit = b.movi(2 + rng.nextBelow(6));
            bool divergent_body = rng.chance(0.5);
            Label head = b.newLabel();
            b.bind(head);
            b.iaddTo(acc, acc, any());
            if (divergent_body) {
                RegId bit = b.band(tid, b.movi(1 + rng.nextBelow(7)));
                RegId p2 = b.setNe(bit, b.movi(0));
                Label skip = b.newLabel();
                RegId np = b.setEq(p2, b.movi(0));
                b.braIf(np, skip);
                // Soft definition of acc: only some lanes update.
                b.iaddTo(acc, acc, b.movi(rng.nextRange(1, 9)));
                b.bind(skip);
            }
            b.iaddiTo(i, i, 1);
            RegId p = b.setLt(i, limit);
            b.braIf(p, head);
            pool.push_back(acc);
            break;
          }
        }
    }
    // Final observable store of a mixed value.
    RegId out = any();
    for (unsigned i = 0; i < 2 && pool.size() > 1; ++i)
        out = b.bxor(out, any());
    b.st(out, addr, 3u << 20);
    return b.build();
}

struct PropCase
{
    std::uint64_t seed;
    unsigned capacity;
    bool compressor;
    bool fifo;
};

class ReglessEquivalence : public ::testing::TestWithParam<PropCase>
{
};

TEST_P(ReglessEquivalence, MatchesBaselineMemoryImage)
{
    const PropCase &param = GetParam();
    ir::Kernel base_kernel = randomKernel(param.seed);
    ir::Kernel rl_kernel = randomKernel(param.seed);

    sim::GpuConfig base_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    sim::GpuConfig rl_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    rl_cfg.setOsuCapacity(param.capacity);
    rl_cfg.regless.compressorEnabled = param.compressor;
    rl_cfg.regless.fifoActivation = param.fifo;

    sim::GpuSimulator base(base_kernel, base_cfg);
    sim::GpuSimulator rl(rl_kernel, rl_cfg);
    base.run();
    rl.run();
    ASSERT_TRUE(base.sm().done());
    ASSERT_TRUE(rl.sm().done());

    // Compare the observable data segment (all store windows).
    for (Addr off = 2u << 20; off < (3u << 20) + (1u << 14);
         off += 4 * 61) {
        Addr a = base_cfg.sm.dataBase + off;
        ASSERT_EQ(base.memory().readWord(a), rl.memory().readWord(a))
            << "seed " << param.seed << " capacity " << param.capacity
            << " offset " << off;
    }
}

std::vector<PropCase>
propCases()
{
    std::vector<PropCase> cases;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        cases.push_back({seed, 512, true, false});
        cases.push_back({seed, 128, true, false});
    }
    // A few configuration corners on fixed seeds.
    cases.push_back({3, 512, false, false});
    cases.push_back({5, 512, true, true});
    cases.push_back({7, 256, false, true});
    cases.push_back({11, 2048, true, false});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomKernels, ReglessEquivalence, ::testing::ValuesIn(propCases()),
    [](const ::testing::TestParamInfo<PropCase> &info) {
        const PropCase &p = info.param;
        return "seed" + std::to_string(p.seed) + "_cap" +
               std::to_string(p.capacity) +
               (p.compressor ? "_comp" : "_nocomp") +
               (p.fifo ? "_fifo" : "_lifo");
    });

/** Region-partition invariants on the same random kernels. */
class RegionInvariants
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RegionInvariants, PartitionIsSoundForRandomKernels)
{
    ir::Kernel kernel = randomKernel(GetParam());
    compiler::CompiledKernel ck = compiler::compile(kernel);
    const ir::Kernel &k = ck.kernel();

    std::vector<unsigned> covered(k.numInsns(), 0);
    for (const compiler::Region &region : ck.regions()) {
        // Coverage and block containment.
        EXPECT_EQ(k.blockOf(region.startPc), k.blockOf(region.endPc));
        for (Pc pc = region.startPc; pc <= region.endPc; ++pc)
            ++covered[pc];
        // Annotation PCs are inside the region.
        for (const auto &[pc, regs] : region.erases) {
            EXPECT_TRUE(region.contains(pc));
            (void)regs;
        }
        for (const auto &[pc, regs] : region.evicts) {
            EXPECT_TRUE(region.contains(pc));
            (void)regs;
        }
        // Interior registers never appear as inputs or outputs.
        for (RegId r : region.interiors) {
            EXPECT_EQ(std::count(region.inputs.begin(),
                                 region.inputs.end(), r),
                      0);
            EXPECT_EQ(std::count(region.outputs.begin(),
                                 region.outputs.end(), r),
                      0);
        }
        // Bank usage covers the peak.
        EXPECT_GE(region.reservedLines(), region.maxLive);
    }
    for (unsigned c : covered)
        EXPECT_EQ(c, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionInvariants,
                         ::testing::Range<std::uint64_t>(1, 25));

} // namespace
} // namespace regless
