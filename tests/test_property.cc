/**
 * @file
 * Property-based differential tests: randomly generated (but always
 * valid) kernels must produce byte-identical architectural results
 * under the baseline register file and under RegLess, across OSU
 * capacities, compressor settings, and activation policies. This is
 * the strongest invariant in the repository: operand staging must be
 * semantically invisible.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/fault_injector.hh"
#include "common/sim_error.hh"
#include "compiler/staging_checker.hh"
#include "compiler/value_range.hh"
#include "golden_runs.hh"
#include "ir/cfg_analysis.hh"
#include "regless/operand_staging_unit.hh"
#include "regless/regless_provider.hh"
#include "ir/liveness.hh"
#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "workloads/random_kernel.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

using workloads::randomKernel;

struct PropCase
{
    std::uint64_t seed;
    unsigned capacity;
    bool compressor;
    bool fifo;
};

class ReglessEquivalence : public ::testing::TestWithParam<PropCase>
{
};

TEST_P(ReglessEquivalence, MatchesBaselineMemoryImage)
{
    const PropCase &param = GetParam();
    ir::Kernel base_kernel = randomKernel(param.seed);
    ir::Kernel rl_kernel = randomKernel(param.seed);

    sim::GpuConfig base_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    sim::GpuConfig rl_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    rl_cfg.setOsuCapacity(param.capacity);
    rl_cfg.regless.compressorEnabled = param.compressor;
    rl_cfg.regless.fifoActivation = param.fifo;

    sim::GpuSimulator base(base_kernel, base_cfg);
    sim::GpuSimulator rl(rl_kernel, rl_cfg);
    base.run();
    rl.run();
    ASSERT_TRUE(base.sm().done());
    ASSERT_TRUE(rl.sm().done());

    // Compare the observable data segment (all store windows).
    for (Addr off = 2u << 20; off < (3u << 20) + (1u << 14);
         off += 4 * 61) {
        Addr a = base_cfg.sm.dataBase + off;
        ASSERT_EQ(base.memory().readWord(a), rl.memory().readWord(a))
            << "seed " << param.seed << " capacity " << param.capacity
            << " offset " << off;
    }
}

std::vector<PropCase>
propCases()
{
    std::vector<PropCase> cases;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        cases.push_back({seed, 512, true, false});
        cases.push_back({seed, 128, true, false});
    }
    // A few configuration corners on fixed seeds.
    cases.push_back({3, 512, false, false});
    cases.push_back({5, 512, true, true});
    cases.push_back({7, 256, false, true});
    cases.push_back({11, 2048, true, false});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomKernels, ReglessEquivalence, ::testing::ValuesIn(propCases()),
    [](const ::testing::TestParamInfo<PropCase> &info) {
        const PropCase &p = info.param;
        return "seed" + std::to_string(p.seed) + "_cap" +
               std::to_string(p.capacity) +
               (p.compressor ? "_comp" : "_nocomp") +
               (p.fifo ? "_fifo" : "_lifo");
    });

/**
 * OSU structural invariants under the fuzzer: while a random kernel
 * executes with a small OSU (so reclaims, evictions, and warp drops
 * interleave heavily), every bank's owned + clean + dirty + free must
 * equal linesPerBank() and occupiedLines() must match their sum.
 */
class OsuInvariants : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(OsuInvariants, HoldThroughoutRandomKernelExecution)
{
    ir::Kernel kernel = randomKernel(GetParam());
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    cfg.setOsuCapacity(128); // small: stresses reclaims
    sim::GpuSimulator gpu(kernel, cfg);
    // The config above fixed the provider kind, so the downcast is
    // static (the seam itself is cast-free; see scripts/check.sh).
    auto &provider =
        static_cast<staging::ReglessProvider &>(gpu.provider());

    auto check = [&] {
        for (unsigned shard = 0; shard < cfg.regless.numShards;
             ++shard) {
            staging::OperandStagingUnit &osu = provider.osu(shard);
            unsigned occupied = 0;
            for (unsigned b = 0; b < staging::osuBanks; ++b) {
                auto counts = osu.bankCounts(b);
                ASSERT_EQ(counts.owned + counts.clean + counts.dirty +
                              counts.free,
                          osu.linesPerBank())
                    << "seed " << GetParam() << " shard " << shard
                    << " bank " << b << " cycle " << gpu.sm().now();
                occupied += counts.owned + counts.clean + counts.dirty;
            }
            ASSERT_EQ(occupied, osu.occupiedLines())
                << "seed " << GetParam() << " shard " << shard;
        }
    };

    while (!gpu.sm().done()) {
        gpu.sm().step();
        if (gpu.sm().now() % 64 == 0)
            check();
        ASSERT_LT(gpu.sm().now(), 2'000'000u) << "kernel wedged";
    }
    check();
}

INSTANTIATE_TEST_SUITE_P(RandomKernels, OsuInvariants,
                         ::testing::Values(1, 4, 9, 13));

/** Region-partition invariants on the same random kernels. */
class RegionInvariants
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RegionInvariants, PartitionIsSoundForRandomKernels)
{
    ir::Kernel kernel = randomKernel(GetParam());
    compiler::CompiledKernel ck = compiler::compile(kernel);
    const ir::Kernel &k = ck.kernel();

    std::vector<unsigned> covered(k.numInsns(), 0);
    for (const compiler::Region &region : ck.regions()) {
        // Coverage and block containment.
        EXPECT_EQ(k.blockOf(region.startPc), k.blockOf(region.endPc));
        for (Pc pc = region.startPc; pc <= region.endPc; ++pc)
            ++covered[pc];
        // Annotation PCs are inside the region.
        for (const auto &[pc, regs] : region.erases) {
            EXPECT_TRUE(region.contains(pc));
            (void)regs;
        }
        for (const auto &[pc, regs] : region.evicts) {
            EXPECT_TRUE(region.contains(pc));
            (void)regs;
        }
        // Interior registers never appear as inputs or outputs.
        for (RegId r : region.interiors) {
            EXPECT_EQ(std::count(region.inputs.begin(),
                                 region.inputs.end(), r),
                      0);
            EXPECT_EQ(std::count(region.outputs.begin(),
                                 region.outputs.end(), r),
                      0);
        }
        // Bank usage covers the peak.
        EXPECT_GE(region.reservedLines(), region.maxLive);
    }
    for (unsigned c : covered)
        EXPECT_EQ(c, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionInvariants,
                         ::testing::Range<std::uint64_t>(1, 25));

/** Random kernels must also pass the full path-sensitive lint. */
class LintClean : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LintClean, RandomKernelsAreLintClean)
{
    compiler::CompiledKernel ck =
        compiler::compile(randomKernel(GetParam()));
    std::vector<compiler::Finding> findings =
        compiler::lintCompiledKernel(ck);
    EXPECT_TRUE(findings.empty())
        << compiler::formatFindings(findings);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LintClean,
                         ::testing::Range<std::uint64_t>(1, 41));

/**
 * Mutation testing of the staging checker: systematically corrupt
 * the annotations of compiled random kernels and measure how many
 * mutants the static lint kills. The acceptance bar is >= 95% static
 * detection; any escapee must be caught by the dynamic shadow
 * checker instead.
 */

struct Mutant
{
    std::string op;
    std::uint64_t seed;
    compiler::CompiledKernel ck;
};

using MutationOp = std::function<bool(const compiler::CompiledKernel &,
                                      std::vector<compiler::Region> &)>;

/** First region index satisfying @a pred, or regions.size(). */
template <typename Pred>
std::size_t
firstRegion(const std::vector<compiler::Region> &regions, Pred pred)
{
    for (std::size_t i = 0; i < regions.size(); ++i) {
        if (pred(regions[i]))
            return i;
    }
    return regions.size();
}

bool
dropPreload(const compiler::CompiledKernel &,
            std::vector<compiler::Region> &regions)
{
    std::size_t i = firstRegion(regions, [](const compiler::Region &r) {
        return !r.preloads.empty();
    });
    if (i == regions.size())
        return false;
    regions[i].preloads.erase(regions[i].preloads.begin());
    return true;
}

bool
dropErase(const compiler::CompiledKernel &,
          std::vector<compiler::Region> &regions)
{
    std::size_t i = firstRegion(regions, [](const compiler::Region &r) {
        return !r.erases.empty();
    });
    if (i == regions.size())
        return false;
    auto it = regions[i].erases.begin();
    it->second.erase(it->second.begin());
    if (it->second.empty())
        regions[i].erases.erase(it);
    return true;
}

bool
dropEvict(const compiler::CompiledKernel &,
          std::vector<compiler::Region> &regions)
{
    std::size_t i = firstRegion(regions, [](const compiler::Region &r) {
        return !r.evicts.empty();
    });
    if (i == regions.size())
        return false;
    auto it = regions[i].evicts.begin();
    it->second.erase(it->second.begin());
    if (it->second.empty())
        regions[i].evicts.erase(it);
    return true;
}

bool
flipInvalidateOn(const compiler::CompiledKernel &ck,
                 std::vector<compiler::Region> &regions)
{
    // Only non-invalidating preloads of still-needed values are
    // eligible; flipping one reintroduces the premature-invalidation
    // bug class (§4.3).
    ir::CfgAnalysis cfg(ck.kernel());
    ir::Liveness live(ck.kernel(), cfg);
    for (compiler::Region &region : regions) {
        for (compiler::Preload &p : region.preloads) {
            if (!p.invalidate &&
                live.liveAfter(region.endPc, p.reg)) {
                p.invalidate = true;
                return true;
            }
        }
    }
    return false;
}

bool
shrinkMaxLive(const compiler::CompiledKernel &,
              std::vector<compiler::Region> &regions)
{
    std::size_t i = firstRegion(regions, [](const compiler::Region &r) {
        return r.maxLive > 0;
    });
    if (i == regions.size())
        return false;
    --regions[i].maxLive;
    return true;
}

bool
underclaimBank(const compiler::CompiledKernel &,
               std::vector<compiler::Region> &regions)
{
    for (compiler::Region &region : regions) {
        for (unsigned b = 0; b < compiler::numOsuBanks; ++b) {
            if (region.bankUsage[b] > 0) {
                --region.bankUsage[b];
                return true;
            }
        }
    }
    return false;
}

bool
bogusCacheInvalidation(const compiler::CompiledKernel &,
                       std::vector<compiler::Region> &regions)
{
    std::size_t i = firstRegion(regions, [](const compiler::Region &r) {
        return !r.inputs.empty();
    });
    if (i == regions.size())
        return false;
    regions[i].cacheInvalidations.push_back(regions[i].inputs.front());
    return true;
}

/**
 * Record @a enc on the first evicted register whose recomputed value
 * facts do NOT imply it: a compile-time compression claim the value
 * can escape at runtime (codes::encodingUnsound).
 */
bool
forgeEncoding(const compiler::CompiledKernel &ck,
              std::vector<compiler::Region> &regions,
              compiler::StaticEncoding enc)
{
    ir::CfgAnalysis cfg(ck.kernel());
    ir::Liveness live(ck.kernel(), cfg);
    compiler::ValueRangeAnalysis vra(ck.kernel(), cfg, live);
    for (compiler::Region &region : regions) {
        for (const auto &[pc, regs] : region.evicts) {
            for (RegId r : regs) {
                if (compiler::encodingImplied(enc, vra.after(pc, r)))
                    continue;
                region.encodings[r] = enc;
                return true;
            }
        }
    }
    return false;
}

bool
forgeNarrowEncoding(const compiler::CompiledKernel &ck,
                    std::vector<compiler::Region> &regions)
{
    // Widen a value past its proven range: claim the low 16 bits
    // suffice for a register the analysis cannot bound.
    return forgeEncoding(ck, regions,
                         compiler::StaticEncoding::NarrowWidth);
}

bool
forgeUniformEncoding(const compiler::CompiledKernel &ck,
                     std::vector<compiler::Region> &regions)
{
    // Flip a divergent vector to a uniform broadcast: claim one lane
    // represents all 32 for a register that is not proven uniform.
    return forgeEncoding(ck, regions,
                         compiler::StaticEncoding::UniformScalar);
}

TEST(MutationHarness, StaticLintKillsAtLeast95PercentOfMutants)
{
    const std::vector<std::pair<const char *, MutationOp>> ops = {
        {"dropPreload", dropPreload},
        {"dropErase", dropErase},
        {"dropEvict", dropEvict},
        {"flipInvalidateOn", flipInvalidateOn},
        {"shrinkMaxLive", shrinkMaxLive},
        {"underclaimBank", underclaimBank},
        {"bogusCacheInvalidation", bogusCacheInvalidation},
        {"forgeNarrowEncoding", forgeNarrowEncoding},
        {"forgeUniformEncoding", forgeUniformEncoding},
    };

    unsigned generated = 0;
    unsigned killed = 0;
    std::vector<Mutant> escaped;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const compiler::CompiledKernel ck =
            compiler::compile(randomKernel(seed));
        for (const auto &[name, op] : ops) {
            auto regions = ck.regions();
            if (!op(ck, regions))
                continue; // kernel has no eligible site
            compiler::CompiledKernel mutant(ck.kernel(),
                                            std::move(regions),
                                            ck.lifetimeStats(),
                                            ck.metadataInsns());
            ++generated;
            if (compiler::hasErrors(
                    compiler::lintCompiledKernel(mutant))) {
                ++killed;
            } else {
                escaped.push_back(Mutant{name, seed, mutant});
            }
        }
    }

    ASSERT_GT(generated, 30u) << "mutation harness generated too few "
                                 "mutants to be meaningful";
    EXPECT_GE(killed * 100, generated * 95)
        << killed << "/" << generated << " mutants statically killed";

    // Defense in depth: anything the static lint missed must be
    // caught by the dynamic shadow checker.
    for (const Mutant &m : escaped) {
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
        cfg.regless.runtimeCheck = true;
        cfg.setOsuCapacity(128);
        sim::GpuSimulator gpu(m.ck, cfg);
        gpu.run();
        EXPECT_FALSE(gpu.runtimeViolations().empty())
            << "mutant " << m.op << " seed " << m.seed
            << " escaped both the static lint and the runtime check";
    }
}

/**
 * The value-corrupting operators must be killed statically on EVERY
 * random kernel with an eligible site — 100%, not just the harness's
 * 95% aggregate bar: a forged encoding that reached the compressor
 * could mis-decode an evicted vector, so no escape is tolerable.
 */
TEST(MutationHarness, ForgedEncodingsAreAlwaysStaticallyKilled)
{
    const std::vector<std::pair<const char *, MutationOp>> forgers = {
        {"forgeNarrowEncoding", forgeNarrowEncoding},
        {"forgeUniformEncoding", forgeUniformEncoding},
    };
    unsigned generated = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const compiler::CompiledKernel ck =
            compiler::compile(randomKernel(seed));
        for (const auto &[name, op] : forgers) {
            auto regions = ck.regions();
            if (!op(ck, regions))
                continue;
            compiler::CompiledKernel mutant(ck.kernel(),
                                            std::move(regions),
                                            ck.lifetimeStats(),
                                            ck.metadataInsns());
            ++generated;
            std::vector<compiler::Finding> findings =
                compiler::lintCompiledKernel(mutant);
            EXPECT_TRUE(std::any_of(
                findings.begin(), findings.end(),
                [](const compiler::Finding &f) {
                    return f.code == compiler::codes::encodingUnsound;
                }))
                << name << " escaped the lint on seed " << seed;
            EXPECT_TRUE(compiler::hasErrors(findings)) << name;
        }
    }
    EXPECT_GT(generated, 10u)
        << "too few forgeable sites for a meaningful kill rate";
}

/**
 * Static/dynamic agreement on specific mutants whose runtime footprint
 * is well-defined (no simulator panic): the shadow checker must
 * observe the same bug class the static lint reports.
 */
TEST(MutationHarness, DroppedEraseIsCaughtAtRuntime)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const compiler::CompiledKernel ck =
            compiler::compile(randomKernel(seed));
        auto regions = ck.regions();
        if (!dropErase(ck, regions))
            continue;
        compiler::CompiledKernel mutant(ck.kernel(), std::move(regions),
                                        ck.lifetimeStats(),
                                        ck.metadataInsns());
        ASSERT_TRUE(compiler::hasErrors(
            compiler::lintCompiledKernel(mutant)));

        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
        cfg.regless.runtimeCheck = true;
        sim::GpuSimulator gpu(mutant, cfg);
        gpu.run();
        std::vector<compiler::Finding> violations =
            gpu.runtimeViolations();
        bool leaked = std::any_of(
            violations.begin(), violations.end(),
            [](const compiler::Finding &f) {
                return f.code == compiler::codes::rtLeakedLine;
            });
        EXPECT_TRUE(leaked)
            << "seed " << seed << ": dropped erase not observed as a "
            << "leaked line at runtime ("
            << compiler::formatFindings(violations) << ")";
        return; // one agreeing mutant is the point
    }
    GTEST_SKIP() << "no random kernel with an erase annotation";
}

TEST(MutationHarness, DroppedPreloadsAreCaughtAtRuntimeUnderPressure)
{
    // A missing preload is runtime-benign as long as the producing
    // region's evicted line is still resident; only once reclaims kick
    // in does the region read a value that is really gone. Drop every
    // preload, run under OSU pressure, and accept either runtime
    // verdict: the shadow checker flags an unstaged read, or the OSU's
    // own invariant panics on an absent line (thrown as SimError) —
    // any outcome except a clean, silent run.
    const compiler::CompiledKernel ck = compiler::compile(randomKernel(1));
    auto regions = ck.regions();
    bool dropped = false;
    for (compiler::Region &region : regions) {
        dropped = dropped || !region.preloads.empty();
        region.preloads.clear();
    }
    ASSERT_TRUE(dropped);
    compiler::CompiledKernel mutant(ck.kernel(), std::move(regions),
                                    ck.lifetimeStats(),
                                    ck.metadataInsns());
    ASSERT_TRUE(
        compiler::hasErrors(compiler::lintCompiledKernel(mutant)));

    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    cfg.regless.runtimeCheck = true;
    cfg.setOsuCapacity(128);
    bool detected = false;
    try {
        sim::GpuSimulator gpu(mutant, cfg);
        gpu.run();
        detected = !gpu.runtimeViolations().empty();
    } catch (const sim::SimError &) {
        detected = true;
    }
    EXPECT_TRUE(detected)
        << "dropped preloads escaped both runtime defences";
}

TEST(MutationHarness, RestoredDivergentInvalidateIsCaughtAtRuntime)
{
    // Historical bug class: an invalidating preload justified by CFG
    // liveness alone destroys a value a divergent sibling path still
    // reads. The compiler now suppresses these (see
    // ir::divergentSiblingMayRead); restoring them must trip both the
    // static lint and — under OSU pressure, where the clean line gets
    // reclaimed — the runtime shadow checker.
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("heartwall"));
    ir::CfgAnalysis cfg_a(ck.kernel());
    ir::Liveness live(ck.kernel(), cfg_a);
    auto regions = ck.regions();
    unsigned flipped = 0;
    for (compiler::Region &region : regions) {
        for (compiler::Preload &p : region.preloads) {
            if (!p.invalidate &&
                !live.liveAfter(region.endPc, p.reg)) {
                // Exactly the preloads the divergence rule suppressed.
                p.invalidate = true;
                ++flipped;
            }
        }
    }
    ASSERT_GT(flipped, 0u)
        << "heartwall no longer has divergence-suppressed invalidates";
    compiler::CompiledKernel mutant(ck.kernel(), std::move(regions),
                                    ck.lifetimeStats(),
                                    ck.metadataInsns());
    std::vector<compiler::Finding> findings =
        compiler::lintCompiledKernel(mutant);
    bool static_hit = std::any_of(
        findings.begin(), findings.end(),
        [](const compiler::Finding &f) {
            return f.code == compiler::codes::invalidateLive;
        });
    EXPECT_TRUE(static_hit) << compiler::formatFindings(findings);

    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    cfg.regless.runtimeCheck = true;
    cfg.setOsuCapacity(128);
    sim::GpuSimulator gpu(mutant, cfg);
    gpu.run();
    std::vector<compiler::Finding> violations = gpu.runtimeViolations();
    bool runtime_hit = std::any_of(
        violations.begin(), violations.end(),
        [](const compiler::Finding &f) {
            return f.code == compiler::codes::rtPreloadLost;
        });
    EXPECT_TRUE(runtime_hit)
        << "runtime shadow checker missed the restored invalidate bug ("
        << compiler::formatFindings(violations) << ")";
}

/**
 * Differential fuzzing of the cycle-skip engine (DESIGN.md §12):
 * random kernels under randomized fault plans must produce the exact
 * same observable outcome with skipping on and off — identical
 * RunStats (engine meta-counters aside), identical runtime-violation
 * sets from the shadow checker, and identical deadlock/error
 * diagnoses when the plan wedges or crashes the run.
 */

struct SkipFuzzCase
{
    std::uint64_t seed;
    sim::ProviderKind provider;
    FaultPlan plan;
};

/** Everything a run can externally produce, skip-mode-independent. */
struct SkipFuzzOutcome
{
    bool completed = false;
    sim::RunStats stats;
    std::vector<std::string> violations;
    std::string deadlock; ///< rendered DeadlockReport, empty if none
    std::string error;    ///< SimError message, empty if none
};

SkipFuzzOutcome
runFuzzCase(const SkipFuzzCase &c, bool cycle_skip)
{
    sim::GpuConfig cfg = sim::GpuConfig::forProvider(c.provider);
    cfg.sm.cycleSkip = cycle_skip;
    cfg.faults = c.plan;
    // Exercise the shadow checker so the violation set is live, and
    // keep wedged plans from running to the multi-million default.
    if (c.provider == sim::ProviderKind::Regless)
        cfg.regless.runtimeCheck = true;
    cfg.sm.watchdogWindow = 5000;
    cfg.sm.maxCycles = 2'000'000;

    SkipFuzzOutcome out;
    sim::GpuSimulator gpu(randomKernel(c.seed), cfg);
    try {
        out.stats = testutil::withoutSkipMeta(gpu.run());
        out.completed = true;
    } catch (const sim::DeadlockError &e) {
        out.deadlock = e.report().render();
    } catch (const sim::SimError &e) {
        out.error = e.what();
    }
    for (const compiler::Finding &f : gpu.runtimeViolations())
        out.violations.push_back(f.toString());
    return out;
}

std::vector<SkipFuzzCase>
skipFuzzCases()
{
    std::vector<SkipFuzzCase> cases;
    // Deterministic pseudo-random plan mix (xorshift): kernels, fault
    // kinds, trigger cycles, and providers all vary case to case.
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    auto next = [&state] {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dULL;
    };
    const FaultPlan::Kind kinds[] = {
        FaultPlan::Kind::None,
        FaultPlan::Kind::LeakOsuSlot,
        FaultPlan::Kind::DropDramResponse,
        FaultPlan::Kind::ProviderThrow,
    };
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const std::uint64_t r = next();
        SkipFuzzCase c;
        c.seed = seed;
        c.provider = (r & 1) ? sim::ProviderKind::Regless
                             : sim::ProviderKind::Baseline;
        c.plan.kind = kinds[(r >> 1) & 3];
        c.plan.triggerCycle = (r >> 8) % 4000;
        c.plan.transient = (r >> 4) & 1;
        cases.push_back(c);
    }
    // Pinned corners: every fault kind on the provider it targets
    // (LeakOsuSlot / ProviderThrow are staging-side and inert under
    // the baseline register file).
    cases.push_back({2, sim::ProviderKind::Regless,
                     {FaultPlan::Kind::LeakOsuSlot, 0, false}});
    cases.push_back({3, sim::ProviderKind::Regless,
                     {FaultPlan::Kind::ProviderThrow, 1000, false}});
    cases.push_back({5, sim::ProviderKind::Baseline,
                     {FaultPlan::Kind::DropDramResponse, 0, false}});
    cases.push_back({7, sim::ProviderKind::Regless,
                     {FaultPlan::Kind::DropDramResponse, 500, true}});
    return cases;
}

class CycleSkipFuzz : public ::testing::TestWithParam<SkipFuzzCase>
{
};

TEST_P(CycleSkipFuzz, OutcomeIsIdenticalWithAndWithoutSkipping)
{
    const SkipFuzzCase &c = GetParam();
    const SkipFuzzOutcome off = runFuzzCase(c, false);
    const SkipFuzzOutcome on = runFuzzCase(c, true);

    EXPECT_EQ(on.completed, off.completed);
    if (on.completed && off.completed)
        EXPECT_TRUE(on.stats == off.stats);
    EXPECT_EQ(on.violations, off.violations);
    EXPECT_EQ(on.deadlock, off.deadlock);
    EXPECT_EQ(on.error, off.error);
}

INSTANTIATE_TEST_SUITE_P(
    RandomPlans, CycleSkipFuzz, ::testing::ValuesIn(skipFuzzCases()),
    [](const ::testing::TestParamInfo<SkipFuzzCase> &info) {
        const SkipFuzzCase &c = info.param;
        return "seed" + std::to_string(c.seed) + "_" +
               std::string(sim::providerName(c.provider)) + "_" +
               faultKindName(c.plan.kind) + "_t" +
               std::to_string(c.plan.triggerCycle) +
               (c.plan.transient ? "_transient" : "");
    });

} // namespace
} // namespace regless
