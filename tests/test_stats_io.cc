/**
 * @file
 * Serialization round-trip coverage for stats_io: a RunStats written
 * as JSON and read back must compare exactly equal, including doubles
 * (written at full precision) and the backing-store time series.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "arch/stall.hh"
#include "sim/experiment.hh"
#include "sim/job_cache.hh"
#include "sim/stats_io.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

TEST(StatsIoRoundTrip, RealRunSurvivesWriteRead)
{
    sim::RunStats stats = sim::runKernel(workloads::makeRodinia("nn"),
                                         sim::ProviderKind::Regless);
    sim::RunStats back = sim::fromJson(sim::toJson(stats));
    EXPECT_TRUE(stats == back);
    // Spot-check a few fields so a broken operator== cannot hide a
    // parser bug behind a vacuous comparison.
    EXPECT_EQ(back.kernel, "nn");
    EXPECT_EQ(back.provider, sim::ProviderKind::Regless);
    EXPECT_EQ(back.cycles, stats.cycles);
    EXPECT_EQ(back.backingSeries.size(), stats.backingSeries.size());
    EXPECT_DOUBLE_EQ(back.energy.total(), stats.energy.total());
}

TEST(StatsIoRoundTrip, BaselineProviderSurvives)
{
    sim::RunStats stats = sim::runKernel(workloads::makeRodinia("bfs"),
                                         sim::ProviderKind::Baseline);
    sim::RunStats back = sim::fromJson(sim::toJson(stats));
    EXPECT_TRUE(stats == back);
    EXPECT_EQ(back.rfReads, stats.rfReads);
    EXPECT_EQ(back.rfWrites, stats.rfWrites);
}

TEST(StatsIoRoundTrip, HandMadeCornerCases)
{
    sim::RunStats stats;
    stats.kernel = "weird \"name\" with \\escapes\\";
    stats.provider = sim::ProviderKind::ReglessNoCompressor;
    stats.cycles = 123456789;
    stats.insns = 987654321;
    stats.renameLookups = 42;
    stats.lrfAccesses = 7;
    stats.orfAccesses = 8;
    stats.mrfAccesses = 9;
    stats.regionInsnsMean = 17.125;
    // A value that truncated 6-digit formatting would corrupt.
    stats.meanWorkingSetBytes = 1234.5678901234567;
    stats.backingSeries = {0.0, 1.5, 2.25, 1e-17, 3e8};

    sim::RunStats back = sim::fromJson(sim::toJson(stats));
    EXPECT_TRUE(stats == back);
    EXPECT_EQ(back.kernel, stats.kernel);
    EXPECT_EQ(back.meanWorkingSetBytes, stats.meanWorkingSetBytes);
    EXPECT_EQ(back.backingSeries, stats.backingSeries);
}

TEST(StatsIoRoundTrip, SlotAttributionSurvives)
{
    // The issue-slot fields land in the flat schema as issued_slots
    // plus one stall_<cause> key each; distinct per-cause values catch
    // any prefix-matching mix-up between causes.
    sim::RunStats stats;
    stats.kernel = "slots";
    stats.issuedSlots = 1000001;
    for (std::size_t c = 0; c < arch::kNumStallCauses; ++c)
        stats.stallSlots[c] = 100 + 7 * c;

    const std::string json = sim::toJson(stats);
    for (std::size_t c = 0; c < arch::kNumStallCauses; ++c) {
        const std::string key =
            std::string("stall_") +
            arch::stallCauseName(static_cast<arch::StallCause>(c));
        EXPECT_NE(json.find("\"" + key + "\""), std::string::npos)
            << key;
    }
    sim::RunStats back = sim::fromJson(json);
    EXPECT_TRUE(stats == back);
    EXPECT_EQ(back.issuedSlots, stats.issuedSlots);
    for (std::size_t c = 0; c < arch::kNumStallCauses; ++c)
        EXPECT_EQ(back.stallSlots[c], stats.stallSlots[c]) << c;
}

TEST(StatsIoRoundTrip, ArrayOfRunsSurvives)
{
    std::vector<sim::RunStats> runs;
    runs.push_back(sim::runKernel(workloads::makeRodinia("nn"),
                                  sim::ProviderKind::Baseline));
    runs.push_back(sim::runKernel(workloads::makeRodinia("nn"),
                                  sim::ProviderKind::Regless));

    std::ostringstream oss;
    sim::writeJson(oss, runs);
    std::vector<sim::RunStats> back = sim::runsFromJson(oss.str());
    ASSERT_EQ(back.size(), runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i)
        EXPECT_TRUE(runs[i] == back[i]) << "run " << i;
}

TEST(StatsIoRoundTrip, EmptyArrayAndUnknownKeys)
{
    EXPECT_TRUE(sim::runsFromJson("[]").empty());
    // Unknown keys are skipped; known ones still land.
    sim::RunStats parsed = sim::fromJson(
        "{\"future_field\":3.5,\"cycles\":77,"
        "\"future_array\":[1,2],\"kernel\":\"k\"}");
    EXPECT_EQ(parsed.cycles, 77u);
    EXPECT_EQ(parsed.kernel, "k");
}

TEST(JobRecordForwardCompat, NewerSchemaParsesIntactForTheGate)
{
    // Forward-compatibility contract split: the *parser* tolerates a
    // record written by a newer build (unknown keys skipped, known
    // fields landed, the foreign schema stamp preserved verbatim);
    // *rejecting* it is the cache's schema gate, which needs exactly
    // this intact record.schema to diagnose "newer build shares this
    // directory" instead of serving a half-parsed record.
    sim::JobRecord record;
    std::string error;
    const std::string json =
        "{\"record_schema\":" +
        std::to_string(sim::kJobCacheSchemaVersion + 1) +
        ",\"record_status\":\"ok\",\"record_attempts\":2,"
        "\"stat_from_the_future\":[1,2,3],"
        "\"kernel\":\"tomorrow\",\"cycles\":42}";
    ASSERT_TRUE(sim::tryRecordFromJson(json, record, &error)) << error;
    EXPECT_EQ(record.schema, sim::kJobCacheSchemaVersion + 1);
    EXPECT_EQ(record.status, sim::JobStatus::Ok);
    EXPECT_EQ(record.attempts, 2u);
    EXPECT_EQ(record.stats.kernel, "tomorrow");
    EXPECT_EQ(record.stats.cycles, 42u);
}

TEST(JobRecordForwardCompat, SkippedStatusRoundTrips)
{
    // JobStatus::Skipped exists for --shard runs; it is never cached,
    // but the name must still round-trip for reports and for any
    // record that does carry it.
    EXPECT_STREQ(sim::jobStatusName(sim::JobStatus::Skipped),
                 "skipped");
    sim::JobStatus status = sim::JobStatus::Ok;
    ASSERT_TRUE(sim::tryJobStatusFromName("skipped", status));
    EXPECT_EQ(status, sim::JobStatus::Skipped);
    EXPECT_FALSE(sim::tryJobStatusFromName("postponed", status));
}

} // namespace
} // namespace regless
