/**
 * @file
 * Unit tests for the compiler: region creation (Algorithm 1), register
 * classification, annotation placement, bank assignment, and metadata
 * encoding.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "compiler/bank_assigner.hh"
#include "compiler/compiler.hh"
#include "compiler/metadata_encoder.hh"
#include "compiler/region_builder.hh"
#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"
#include "workloads/kernel_builder.hh"

namespace regless
{
namespace
{

using compiler::CompiledKernel;
using compiler::CompilerConfig;
using compiler::Region;
using workloads::KernelBuilder;
using workloads::Label;

bool
contains(const std::vector<RegId> &v, RegId r)
{
    return std::find(v.begin(), v.end(), r) != v.end();
}

/** Kernel with a load whose use follows immediately. */
ir::Kernel
loadUseKernel()
{
    KernelBuilder b("loaduse");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId v = b.ld(addr);
    RegId w = b.iaddi(v, 1); // first use of the load
    b.st(w, addr);
    return b.build();
}

TEST(RegionBuilderTest, SplitsLoadFromUse)
{
    ir::Kernel k = loadUseKernel();
    CompilerConfig cfg;
    CompiledKernel ck = compiler::compile(k, cfg);

    // The load and its use must land in different regions.
    Pc load_pc = invalidPc, use_pc = invalidPc;
    for (Pc pc = 0; pc < ck.kernel().numInsns(); ++pc) {
        if (ck.kernel().insn(pc).isGlobalLoad())
            load_pc = pc;
    }
    ASSERT_NE(load_pc, invalidPc);
    RegId dst = ck.kernel().insn(load_pc).dst();
    for (Pc pc = load_pc + 1; pc < ck.kernel().numInsns(); ++pc) {
        const auto &srcs = ck.kernel().insn(pc).srcs();
        if (std::find(srcs.begin(), srcs.end(), dst) != srcs.end()) {
            use_pc = pc;
            break;
        }
    }
    ASSERT_NE(use_pc, invalidPc);
    EXPECT_NE(ck.regionAt(load_pc), ck.regionAt(use_pc));
}

TEST(RegionBuilderTest, RegionsCoverKernelOncePerPc)
{
    ir::Kernel k = loadUseKernel();
    CompiledKernel ck = compiler::compile(k);
    std::vector<unsigned> covered(ck.kernel().numInsns(), 0);
    for (const Region &region : ck.regions()) {
        EXPECT_LE(region.startPc, region.endPc);
        for (Pc pc = region.startPc; pc <= region.endPc; ++pc)
            ++covered[pc];
        // A region never spans a basic-block boundary.
        EXPECT_EQ(ck.kernel().blockOf(region.startPc),
                  ck.kernel().blockOf(region.endPc));
    }
    for (unsigned c : covered)
        EXPECT_EQ(c, 1u);
}

TEST(RegionBuilderTest, MaxLiveRespectsCap)
{
    // A long expression chain forcing many temporaries.
    KernelBuilder b("pressure");
    RegId t = b.tid();
    std::vector<RegId> temps;
    for (int i = 0; i < 24; ++i)
        temps.push_back(b.iaddi(t, i));
    RegId acc = b.movi(0);
    for (RegId r : temps)
        acc = b.iadd(acc, r);
    b.st(acc, t);
    ir::Kernel k = b.build();

    CompilerConfig cfg;
    cfg.maxRegsPerRegion = 8;
    cfg.maxRegsPerBank = 4;
    CompiledKernel ck = compiler::compile(k, cfg);
    for (const Region &region : ck.regions()) {
        if (region.numInsns() > 1) {
            EXPECT_LE(region.maxLive, 8u + 8u)
                << "region " << region.id;
        }
    }
    EXPECT_GT(ck.regions().size(), 2u);
}

TEST(RegionBuilderTest, ValidityChecksDirectly)
{
    ir::Kernel k = loadUseKernel();
    ir::CfgAnalysis cfg(k);
    ir::Liveness live(k, cfg);
    CompilerConfig cc;
    compiler::RegionBuilder builder(k, live, cc);

    EXPECT_TRUE(builder.containsLoadAndUse(0, k.numInsns() - 1));
    EXPECT_FALSE(builder.isValid(0, k.numInsns() - 1));
    // The prefix up to the load is fine.
    EXPECT_FALSE(builder.containsLoadAndUse(0, 2));
}

TEST(RegionClassificationTest, InteriorInputOutput)
{
    // Two regions forced by a load/use split:
    //   region A: compute addr (t interior-ish), load v
    //   region B: use v, store
    ir::Kernel k = loadUseKernel();
    CompilerConfig cfg;
    cfg.reassignBanks = false; // keep register ids stable
    cfg.minRegionInsns = 1;
    CompiledKernel ck = compiler::compile(k, cfg);
    ASSERT_GE(ck.regions().size(), 2u);

    // Find the region containing the use of the load result.
    Pc load_pc = 2;
    ASSERT_TRUE(ck.kernel().insn(load_pc).isGlobalLoad());
    RegId v = ck.kernel().insn(load_pc).dst();
    const Region &load_region = ck.region(ck.regionAt(load_pc));
    const Region &use_region = ck.region(ck.regionAt(load_pc + 1));

    // v is an output of the load region and an input of the use region.
    EXPECT_TRUE(contains(load_region.outputs, v));
    EXPECT_TRUE(contains(use_region.inputs, v));
    // The use region preloads v; since v dies there, it is invalidating.
    bool found = false;
    for (const compiler::Preload &p : use_region.preloads) {
        if (p.reg == v) {
            found = true;
            EXPECT_TRUE(p.invalidate);
        }
    }
    EXPECT_TRUE(found);
}

TEST(RegionClassificationTest, InteriorRegisterErased)
{
    // Single-region straight-line kernel: temporaries are interior and
    // get erase annotations at their last uses.
    KernelBuilder b("interior");
    RegId t = b.tid();
    RegId x = b.iaddi(t, 1);
    RegId y = b.imul(x, x); // last use of x
    b.st(y, t);
    ir::Kernel k = b.build();
    CompilerConfig cfg;
    cfg.reassignBanks = false;
    CompiledKernel ck = compiler::compile(k, cfg);
    ASSERT_EQ(ck.regions().size(), 1u);
    const Region &region = ck.regions()[0];

    EXPECT_TRUE(contains(region.interiors, x));
    EXPECT_TRUE(contains(region.interiors, y));
    EXPECT_TRUE(region.inputs.empty());
    EXPECT_TRUE(region.outputs.empty());

    // x erased at pc 2 (the imul).
    auto it = region.erases.find(2);
    ASSERT_NE(it, region.erases.end());
    EXPECT_TRUE(contains(it->second, x));
}

TEST(RegionClassificationTest, EveryRegisterAccountedOnce)
{
    ir::Kernel k = loadUseKernel();
    CompiledKernel ck = compiler::compile(k);
    for (const Region &region : ck.regions()) {
        for (RegId r : region.interiors) {
            EXPECT_FALSE(contains(region.inputs, r));
            EXPECT_FALSE(contains(region.outputs, r));
        }
        // Every interior register has exactly one erase point.
        std::set<RegId> erased;
        for (const auto &[pc, regs] : region.erases) {
            EXPECT_TRUE(region.contains(pc));
            for (RegId r : regs) {
                EXPECT_TRUE(contains(region.interiors, r));
                EXPECT_TRUE(erased.insert(r).second);
            }
        }
        EXPECT_EQ(erased.size(), region.interiors.size());
        // Every input/output register has exactly one evict point.
        std::set<RegId> evicted;
        for (const auto &[pc, regs] : region.evicts) {
            EXPECT_TRUE(region.contains(pc));
            for (RegId r : regs)
                EXPECT_TRUE(evicted.insert(r).second);
        }
        EXPECT_EQ(evicted.size(),
                  [&] {
                      std::set<RegId> boundary(region.inputs.begin(),
                                               region.inputs.end());
                      boundary.insert(region.outputs.begin(),
                                      region.outputs.end());
                      return boundary.size();
                  }());
    }
}

TEST(RegionCapacityTest, BankUsageSumsAndBounds)
{
    ir::Kernel k = loadUseKernel();
    CompiledKernel ck = compiler::compile(k);
    for (const Region &region : ck.regions()) {
        unsigned sum = 0;
        for (unsigned b = 0; b < compiler::numOsuBanks; ++b)
            sum += region.bankUsage[b];
        EXPECT_GE(sum, region.maxLive);
        EXPECT_EQ(sum, region.reservedLines());
        EXPECT_GT(region.maxLive, 0u);
    }
}

TEST(CacheInvalidationTest, DivergentDeathGetsInvalidation)
{
    // r is used only on one side of a branch; on the other path it dies
    // on the control-flow edge, so an invalidation must be placed at
    // the join (which postdominates defs and deaths).
    KernelBuilder b("edge_death");
    RegId t = b.tid();
    RegId r = b.reg();
    b.moviTo(r, 3);
    // Force r to be cross-region: a load/use split keeps the def and
    // the conditional use in different regions.
    RegId addr = b.imuli(t, 4);
    RegId v = b.ld(addr);
    RegId p = b.setLt(t, b.movi(8));
    Label skip = b.newLabel();
    RegId notp = b.setEq(p, b.movi(0));
    b.braIf(notp, skip);
    RegId sum = b.iadd(r, v); // use of r on the taken path only
    b.st(sum, addr);
    b.bind(skip);
    b.st(v, addr);
    ir::Kernel k = b.build();

    CompilerConfig cfg;
    cfg.reassignBanks = false;
    CompiledKernel ck = compiler::compile(k, cfg);

    // Some region invalidates r.
    bool invalidated = false;
    for (const Region &region : ck.regions()) {
        if (contains(region.cacheInvalidations, r))
            invalidated = true;
    }
    EXPECT_TRUE(invalidated);
    EXPECT_GE(ck.lifetimeStats().edgeDeathRegs, 1u);
}

TEST(BankAssignerTest, MappingIsPermutation)
{
    ir::Kernel k = loadUseKernel();
    ir::CfgAnalysis cfg(k);
    ir::Liveness live(k, cfg);
    compiler::BankAssigner assigner(k, live);
    std::vector<RegId> mapping = assigner.computeMapping();
    ASSERT_EQ(mapping.size(), k.numRegs());
    std::set<RegId> targets(mapping.begin(), mapping.end());
    EXPECT_EQ(targets.size(), mapping.size());
    for (RegId r : targets)
        EXPECT_LT(r, k.numRegs());
}

TEST(BankAssignerTest, ApplyPreservesSemanticsShape)
{
    ir::Kernel k = loadUseKernel();
    ir::CfgAnalysis cfg(k);
    ir::Liveness live(k, cfg);
    compiler::BankAssigner assigner(k, live);
    ir::Kernel remapped =
        compiler::BankAssigner::apply(k, assigner.computeMapping());
    ASSERT_EQ(remapped.numInsns(), k.numInsns());
    for (Pc pc = 0; pc < k.numInsns(); ++pc) {
        EXPECT_EQ(remapped.insn(pc).op(), k.insn(pc).op());
        EXPECT_EQ(remapped.insn(pc).srcs().size(),
                  k.insn(pc).srcs().size());
    }
    EXPECT_EQ(remapped.numRegs(), k.numRegs());
}

TEST(BankAssignerTest, SpreadsCoLiveRegistersAcrossBanks)
{
    // 8 long-lived registers, all co-live: a perfect assignment puts
    // each in a distinct bank.
    KernelBuilder b("spread");
    RegId t = b.tid();
    std::vector<RegId> regs;
    for (int i = 0; i < 8; ++i)
        regs.push_back(b.iaddi(t, i));
    RegId acc = b.movi(0);
    for (RegId r : regs)
        acc = b.iadd(acc, r);
    b.st(acc, t);
    ir::Kernel k = b.build();
    ir::CfgAnalysis cfg(k);
    ir::Liveness live(k, cfg);
    compiler::BankAssigner assigner(k, live);
    std::vector<RegId> mapping = assigner.computeMapping();

    // Together with t and the accumulator, ~10 registers are co-live,
    // so a perfect 1-per-bank split of these 8 is not always possible;
    // but the greedy must spread them widely and never pile up.
    std::array<unsigned, compiler::numOsuBanks> per_bank{};
    for (RegId r : regs)
        ++per_bank[mapping[r] % compiler::numOsuBanks];
    unsigned distinct = 0, worst = 0;
    for (unsigned n : per_bank) {
        distinct += (n > 0);
        worst = std::max(worst, n);
    }
    EXPECT_GE(distinct, 6u);
    EXPECT_LE(worst, 2u);
}

TEST(MetadataEncoderTest, CompactEncodingForSmallRegions)
{
    Region region;
    region.startPc = 0;
    region.endPc = 3; // 4 instructions
    region.preloads.resize(2);
    EXPECT_EQ(compiler::MetadataEncoder::metadataForRegion(region), 1u);
}

TEST(MetadataEncoderTest, FlagPlusOverflowAndMarkers)
{
    Region region;
    region.startPc = 0;
    region.endPc = 17; // 18 instructions -> 2 lifetime markers
    region.preloads.resize(7); // 3 in flag + ceil(4/3) = 2 overflow
    EXPECT_EQ(compiler::MetadataEncoder::metadataForRegion(region),
              1u + 2u + 2u);
}

TEST(MetadataEncoderTest, EncodeFillsTotals)
{
    ir::Kernel k = loadUseKernel();
    CompiledKernel ck = compiler::compile(k);
    unsigned total = 0;
    for (const Region &region : ck.regions()) {
        EXPECT_GE(region.metadataInsns, 1u);
        total += region.metadataInsns;
    }
    EXPECT_EQ(ck.metadataInsns(), total);
}

TEST(CompiledKernelTest, RegionLookupHelpers)
{
    ir::Kernel k = loadUseKernel();
    CompiledKernel ck = compiler::compile(k);
    for (const Region &region : ck.regions()) {
        EXPECT_EQ(ck.regionStartingAt(region.startPc), region.id);
        EXPECT_EQ(ck.regionAt(region.endPc), region.id);
    }
    EXPECT_GT(ck.meanInsnsPerRegion(), 0.0);
    EXPECT_GE(ck.meanMaxLivePerRegion(), 1.0);
}

} // namespace
} // namespace regless

namespace regless
{
namespace
{

using compiler::RegionBuilder;
using workloads::KernelBuilder;

/** A block long enough that the builder must split it repeatedly. */
ir::Kernel
longBlockKernel()
{
    KernelBuilder b("longblock");
    RegId t = b.tid();
    RegId x = t;
    for (int i = 0; i < 60; ++i) {
        RegId addr = b.imuli(x, 4);
        RegId v = b.ld(b.band(addr, b.movi(8191)));
        x = b.bxor(v, b.iaddi(x, i));
    }
    b.st(x, b.imuli(t, 4), 1 << 20);
    return b.build();
}

TEST(SplitPointTest, FirstHalfOfEverySplitIsValid)
{
    ir::Kernel k = longBlockKernel();
    ir::CfgAnalysis cfg(k);
    ir::Liveness live(k, cfg);
    compiler::CompilerConfig cc;
    RegionBuilder builder(k, live, cc);

    // For the big block: splitting at findSplitPoint must leave a
    // valid first half (Algorithm 1's guarantee).
    const ir::BasicBlock &bb = k.block(k.blockOf(5));
    Pc start = bb.firstPc(), end = bb.lastPc();
    ASSERT_FALSE(builder.isValid(start, end));
    Pc split = builder.findSplitPoint(start, end);
    ASSERT_GT(split, start);
    ASSERT_LE(split, end);
    EXPECT_TRUE(builder.isValid(start, split - 1));
}

TEST(SplitPointTest, WorklistTerminatesOnPathologicalBlocks)
{
    // Every instruction both loads and feeds the next load: maximal
    // split pressure, still must terminate with full coverage.
    ir::Kernel k = longBlockKernel();
    compiler::CompilerConfig cc;
    cc.maxRegsPerRegion = 4;
    cc.maxRegsPerBank = 1;
    cc.minRegionInsns = 1;
    compiler::CompiledKernel ck = compiler::compile(k, cc);
    std::vector<unsigned> covered(ck.kernel().numInsns(), 0);
    for (const compiler::Region &region : ck.regions()) {
        for (Pc pc = region.startPc; pc <= region.endPc; ++pc)
            ++covered[pc];
    }
    for (unsigned c : covered)
        EXPECT_EQ(c, 1u);
}

TEST(OccupancyTest2, DeadGapKeepsLineOccupied)
{
    // r is read early, then redefined late: the line is occupied
    // across the gap even though liveness says dead.
    KernelBuilder b("gap");
    RegId t = b.tid();
    RegId r = b.reg();
    b.moviTo(r, 1);
    RegId u1 = b.iadd(r, t); // last read of the first value
    RegId f1 = b.iaddi(u1, 1);
    RegId f2 = b.iaddi(f1, 2);
    b.moviTo(r, 9);          // redefinition after a dead gap
    RegId u2 = b.iadd(r, f2);
    b.st(u2, b.imuli(t, 4));
    ir::Kernel k = b.build();
    ir::CfgAnalysis cfg(k);
    ir::Liveness live(k, cfg);

    compiler::Occupancy occ =
        compiler::computeOccupancy(k, live, 0, k.numInsns() - 1);
    // At the f1/f2 computations, liveness says r is dead, but its
    // line is held: occupancy must count it.
    unsigned live_at_gap = live.liveCountBefore(4);
    EXPECT_GT(occ.maxLive, live_at_gap);
}

TEST(OccupancyTest2, WriteLastTouchExtendsToRegionEnd)
{
    // A load whose result is only used after the region would keep
    // its line through write-back: interval ends at the range end.
    KernelBuilder b("wb");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId v = b.ld(addr);     // last touch in range = the write
    RegId pad1 = b.iaddi(t, 1);
    RegId pad2 = b.iadd(pad1, t);
    b.st(pad2, addr, 4096);
    b.st(v, addr, 8192);
    ir::Kernel k = b.build();
    ir::CfgAnalysis cfg(k);
    ir::Liveness live(k, cfg);

    // Range covering only the load + padding (excludes v's use).
    compiler::Occupancy occ = compiler::computeOccupancy(k, live, 0, 4);
    // v occupies a line at pc 4 even though its next use is later.
    EXPECT_GE(occ.maxLive, 3u);
}

} // namespace
} // namespace regless
