/**
 * @file
 * Multi-tenant SM suite (DESIGN.md §16): single-tenant byte parity
 * against the classic launch path, the per-tenant closed issue-slot
 * account over a Rodinia pairing matrix under every capacity policy,
 * the region-boundary preemption chaos test (random suspend/resume
 * with memory-image parity), starved-tenant deadlock reporting, the
 * QoS controller, and TenantArbiter policy math.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "arch/scoreboard.hh"
#include "common/sim_error.hh"
#include "golden_runs.hh"
#include "regfile/tenant_arbiter.hh"
#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "sim/multi_sm.hh"
#include "sim/stats_io.hh"
#include "workloads/random_kernel.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

using regfile::CapacityPolicy;

/** gtest param names must be [A-Za-z0-9_] ("b+tree" is not). */
std::string
paramName(const std::string &text)
{
    std::string out = text;
    for (char &c : out) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return out;
}

/** Canonical two-tenant config: @a ls priority 1, @a hog priority 0. */
sim::GpuConfig
pairConfig(sim::ProviderKind kind, const std::string &ls,
           const std::string &hog, CapacityPolicy policy)
{
    sim::GpuConfig cfg = sim::GpuConfig::forProvider(kind);
    cfg.tenants.workloads = {{ls, 1}, {hog, 0}};
    cfg.tenants.policy = policy;
    return cfg;
}

std::vector<ir::Kernel>
tenantKernels(const sim::GpuConfig &cfg)
{
    std::vector<ir::Kernel> kernels;
    for (const sim::TenantWorkload &w : cfg.tenants.workloads)
        kernels.push_back(workloads::makeRodinia(w.kernel));
    return kernels;
}

/** Lane account: issued + stalls, per tenant. */
std::uint64_t
laneSlots(const sim::TenantLane &lane)
{
    std::uint64_t total = lane.issuedSlots;
    for (std::uint64_t s : lane.stallSlots)
        total += s;
    return total;
}

// ---------------------------------------------------------------------
// Single-tenant regression guard: one tenant through the multi-tenant
// machinery must be byte-identical to the classic launch path — stats,
// serialized JSON, traces, and deadlock reports — for every workload,
// every provider, skip on and off.
// ---------------------------------------------------------------------

class SingleTenantParity
    : public ::testing::TestWithParam<
          std::tuple<std::string, sim::ProviderKind>>
{
};

TEST_P(SingleTenantParity, VectorLaunchMatchesClassicByteForByte)
{
    const auto &[name, kind] = GetParam();
    const ir::Kernel kernel = workloads::makeRodinia(name);
    for (const bool skip : {false, true}) {
        sim::GpuConfig cfg = sim::GpuConfig::forProvider(kind);
        cfg.sm.cycleSkip = skip;
        sim::GpuSimulator classic(kernel, cfg);
        sim::GpuSimulator tenant(std::vector<ir::Kernel>{kernel}, cfg);
        const sim::RunStats a = classic.run();
        const sim::RunStats b = tenant.run();
        EXPECT_TRUE(a == b) << name << " skip=" << skip;
        EXPECT_EQ(sim::toJson(a), sim::toJson(b));
        // Single-tenant results carry no tenant lanes, so their
        // serialized form is exactly the pre-tenant schema.
        EXPECT_TRUE(b.tenants.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SingleTenantParity,
    ::testing::Combine(
        ::testing::ValuesIn(workloads::rodiniaNames()),
        ::testing::ValuesIn(sim::allProviderKinds())),
    [](const auto &info) {
        return paramName(std::get<0>(info.param)) + "_" +
               sim::providerName(std::get<1>(info.param));
    });

TEST(SingleTenantParityDetail, TracesAreByteIdentical)
{
    const ir::Kernel kernel = workloads::makeRodinia("nn");
    const std::filesystem::path dir(::testing::TempDir());

    auto traced = [&](bool vector_launch) {
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
        cfg.trace.enabled = true;
        cfg.trace.path =
            (dir / (std::string("regless-tenant-trace-") +
                    (vector_launch ? "vec" : "classic") + ".json"))
                .string();
        if (vector_launch) {
            sim::GpuSimulator gpu(std::vector<ir::Kernel>{kernel},
                                  cfg);
            gpu.run();
        } else {
            sim::GpuSimulator gpu(kernel, cfg);
            gpu.run();
        }
        std::ifstream in(cfg.trace.path + ".sm0", std::ios::binary);
        EXPECT_TRUE(in.good());
        std::ostringstream text;
        text << in.rdbuf();
        return text.str();
    };

    const std::string classic = traced(false);
    const std::string vec = traced(true);
    ASSERT_FALSE(classic.empty());
    EXPECT_EQ(vec, classic);
}

TEST(SingleTenantParityDetail, DeadlockReportsAreIdentical)
{
    // A wedged single-tenant run through either ctor must produce the
    // exact same report, with the starved-tenant fields unset (so the
    // rendered text is byte-identical to the pre-tenant format).
    auto wedge = [](bool vector_launch) {
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
        cfg.faults.kind = FaultPlan::Kind::DropDramResponse;
        cfg.faults.triggerCycle = 0;
        cfg.sm.watchdogWindow = 10'000;
        cfg.sm.maxCycles = 2'000'000;
        const ir::Kernel kernel = workloads::makeRodinia("nn");
        try {
            if (vector_launch) {
                sim::GpuSimulator gpu(std::vector<ir::Kernel>{kernel},
                                      cfg);
                gpu.run();
            } else {
                sim::GpuSimulator gpu(kernel, cfg);
                gpu.run();
            }
        } catch (const sim::DeadlockError &e) {
            return e.report();
        }
        ADD_FAILURE() << "dropped DRAM response did not wedge";
        return sim::DeadlockReport{};
    };

    const sim::DeadlockReport classic = wedge(false);
    const sim::DeadlockReport vec = wedge(true);
    EXPECT_EQ(vec.starvedTenant, -1);
    EXPECT_EQ(vec.render().find("starved tenant"), std::string::npos);
    EXPECT_TRUE(vec == classic)
        << vec.render() << "\nvs\n" << classic.render();
}

// ---------------------------------------------------------------------
// Per-tenant closed account: each lane's issued + stalled slots equal
// its scheduler share times the run's cycles, and the lanes sum to the
// whole-SM invariant — on a Rodinia pairing matrix under every
// capacity policy.
// ---------------------------------------------------------------------

class TenantAccount
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, CapacityPolicy>>
{
};

TEST_P(TenantAccount, PerTenantSlotAccountIsClosed)
{
    const auto &[ls, hog, policy] = GetParam();
    const sim::GpuConfig cfg =
        pairConfig(sim::ProviderKind::Regless, ls, hog, policy);
    sim::GpuSimulator gpu(tenantKernels(cfg), cfg);
    const sim::RunStats stats = gpu.run();

    ASSERT_EQ(stats.tenants.size(), 2u);
    const unsigned sched_share = cfg.sm.numSchedulers / 2;
    std::uint64_t lane_slots = 0;
    std::uint64_t lane_insns = 0;
    std::uint64_t lane_issued = 0;
    for (unsigned t = 0; t < 2; ++t) {
        const sim::TenantLane &lane = stats.tenants[t];
        EXPECT_EQ(lane.kernel, cfg.tenants.workloads[t].kernel);
        // The closed account, per tenant: every one of the tenant's
        // scheduler slots in every cycle of the whole run is charged
        // to exactly one bucket.
        EXPECT_EQ(laneSlots(lane), sched_share * stats.cycles)
            << ls << "+" << hog << " tenant " << t;
        EXPECT_GT(lane.insns, 0u);
        EXPECT_GT(lane.finishCycle, 0u);
        lane_slots += laneSlots(lane);
        lane_insns += lane.insns;
        lane_issued += lane.issuedSlots;
    }
    // And the lanes sum to the whole-SM account exactly.
    EXPECT_EQ(lane_slots, testutil::totalSlots(stats));
    EXPECT_EQ(lane_insns, stats.insns);
    EXPECT_EQ(lane_issued, stats.issuedSlots);
    testutil::expectSlotInvariant(stats, cfg.sm.numSchedulers,
                                  ls + "+" + hog);
}

INSTANTIATE_TEST_SUITE_P(
    PairingMatrix, TenantAccount,
    ::testing::Combine(
        ::testing::Values(std::string("nn"), std::string("backprop")),
        ::testing::Values(std::string("srad_v1"),
                          std::string("hotspot")),
        ::testing::Values(CapacityPolicy::FreeForAll,
                          CapacityPolicy::StaticQuota,
                          CapacityPolicy::PriorityReserve)),
    [](const auto &info) {
        return paramName(std::get<0>(info.param)) + "_" +
               paramName(std::get<1>(info.param)) + "_" +
               regfile::capacityPolicyName(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Region-boundary preemption chaos: random suspend/resume over random
// kernels must leave the memory image identical to an uninterrupted
// co-run and to each tenant's solo run (through the per-tenant
// segment translation), with zero shadow-checker violations and zero
// staged lines leaked across any completed suspend.
// ---------------------------------------------------------------------

class PreemptionChaos : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PreemptionChaos, MemoryImageSurvivesRandomPreemption)
{
    const unsigned seed = GetParam();
    const ir::Kernel a = workloads::randomKernel(2 * seed + 1);
    const ir::Kernel b = workloads::randomKernel(2 * seed + 2);

    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    cfg.regless.runtimeCheck = true;
    cfg.sm.cycleSkip = false; // the chaos loop drives step() itself

    const std::vector<ir::Kernel> kernels{a, b};
    sim::GpuSimulator plain(kernels, cfg);
    plain.run();

    // Each co-resident tenant owns half the SM's warps, and a random
    // kernel's thread set follows the warp count — the solo references
    // must run the same partition-sized grid to touch the same tids.
    sim::GpuConfig solo_cfg = cfg;
    solo_cfg.sm.numWarps /= 2;
    sim::GpuSimulator solo_a(a, solo_cfg);
    sim::GpuSimulator solo_b(b, solo_cfg);
    solo_a.run();
    solo_b.run();

    sim::GpuSimulator chaos(kernels, cfg);
    arch::Sm &sm = chaos.sm();
    std::uint64_t lcg = 0x9e3779b97f4a7c15ull * (seed + 1);
    auto rnd = [&lcg](unsigned bound) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<unsigned>(lcg >> 33) % bound;
    };

    const Cycle budget = 4'000'000;
    bool requested[2] = {false, false};
    bool was_suspended[2] = {false, false};
    unsigned completed_suspends = 0;
    Cycle next_action = 100 + rnd(400);
    while (!sm.done() && sm.now() < budget) {
        sm.step();
        for (unsigned t = 0; t < 2; ++t) {
            if (sm.tenantSuspended(t) && !was_suspended[t]) {
                // A completed handoff leaves no staged line behind.
                ++completed_suspends;
                EXPECT_EQ(chaos.provider(t).stagedLinesInUse(), 0u)
                    << "seed " << seed << " tenant " << t
                    << " leaked lines at cycle " << sm.now();
            }
            was_suspended[t] = sm.tenantSuspended(t);
        }
        if (sm.now() >= next_action) {
            const unsigned t = rnd(2);
            if (!requested[t]) {
                sm.requestSuspend(t, sm.now());
            } else {
                sm.resumeTenant(t, sm.now());
                was_suspended[t] = false;
            }
            requested[t] = !requested[t];
            next_action = sm.now() + 100 + rnd(900);
        }
    }
    for (unsigned t = 0; t < 2; ++t) {
        if (requested[t])
            sm.resumeTenant(t, sm.now());
    }
    while (!sm.done() && sm.now() < budget)
        sm.step();
    ASSERT_TRUE(sm.done()) << "seed " << seed << " did not finish";
    const sim::RunStats stats = chaos.collect();
    EXPECT_GT(completed_suspends, 0u) << "seed " << seed;
    EXPECT_GT(stats.tenants[0].preemptions +
                  stats.tenants[1].preemptions,
              0u);

    // No shadow-checker violations despite the interruptions.
    EXPECT_TRUE(chaos.runtimeViolations().empty());

    // Memory-image parity: the chaos run, the uninterrupted co-run,
    // and the solo runs (segment-translated) all agree word for word
    // over the random kernels' store windows.
    auto scan = [&](Addr begin, Addr bytes, Addr solo_shift,
                    sim::GpuSimulator &solo) {
        for (Addr off = 0; off < bytes; off += 4) {
            const Addr addr = begin + off;
            ASSERT_EQ(chaos.memory().readWord(addr),
                      plain.memory().readWord(addr))
                << "seed " << seed << " addr " << std::hex << addr;
            ASSERT_EQ(chaos.memory().readWord(addr),
                      solo.memory().readWord(addr - solo_shift))
                << "seed " << seed << " addr " << std::hex << addr;
        }
    };
    const Addr data = cfg.sm.dataBase;
    const Addr stride = cfg.tenants.dataStride;
    // Random kernels store to segments at +2 MB and +3 MB offsets.
    for (const Addr window : {Addr(0), Addr(2u << 20), Addr(3u << 20)}) {
        scan(data + window, 64 * 1024, 0, solo_a);
        scan(data + stride + window, 64 * 1024, stride, solo_b);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreemptionChaos,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------
// Starved-tenant reporting: a tenant pinned behind an impossible
// capacity gate trips the per-tenant watchdog and the report names the
// tenant and its dominant stall cause.
// ---------------------------------------------------------------------

TEST(TenantStarvation, ReportNamesTheStarvedTenantAndCause)
{
    // reserveFrac = 1.0 hands the whole staging pool to priority
    // tenants: the best-effort tenant can never activate a region.
    sim::GpuConfig cfg =
        pairConfig(sim::ProviderKind::Regless, "nn", "srad_v1",
                   CapacityPolicy::PriorityReserve);
    cfg.tenants.reserveFrac = 1.0;
    cfg.sm.watchdogWindow = 20'000;
    cfg.sm.maxCycles = 2'000'000;

    try {
        sim::GpuSimulator gpu(tenantKernels(cfg), cfg);
        gpu.run();
        FAIL() << "fully reserved pool did not starve the "
                  "best-effort tenant";
    } catch (const sim::DeadlockError &e) {
        const sim::DeadlockReport &report = e.report();
        EXPECT_EQ(report.starvedTenant, 1) << report.render();
        EXPECT_EQ(report.starvedTenantKernel, "srad_v1");
        EXPECT_EQ(report.starvedTenantStall, "cm_no_capacity")
            << report.render();
        EXPECT_NE(report.render().find("starved tenant 1"),
                  std::string::npos)
            << report.render();
    }
}

// ---------------------------------------------------------------------
// QoS controller: parking the throughput hog at region boundaries
// while the latency-sensitive tenant runs.
// ---------------------------------------------------------------------

TEST(TenantQos, ControllerParksTheHogAndBothTenantsFinish)
{
    sim::GpuConfig cfg =
        pairConfig(sim::ProviderKind::Regless, "nn", "srad_v1",
                   CapacityPolicy::PriorityReserve);
    // Sized against the ~4.7k-cycle co-run of this pairing: intervals
    // short enough that the kernels see several park/resume phases,
    // park phases long enough (1500 cycles) for the region-boundary
    // handoff to complete inside them.
    cfg.tenants.qosPreemption = true;
    cfg.tenants.qosInterval = 2000;
    cfg.tenants.qosShare = 0.25;

    sim::GpuSimulator gpu(tenantKernels(cfg), cfg);
    const sim::RunStats stats = gpu.run();

    ASSERT_EQ(stats.tenants.size(), 2u);
    const sim::TenantLane &ls = stats.tenants[0];
    const sim::TenantLane &hog = stats.tenants[1];
    // The controller acted: the hog took preemptions and sat parked.
    EXPECT_GT(hog.preemptions, 0u);
    EXPECT_GT(hog.suspendedCycles, 0u);
    // The LS tenant is never preempted.
    EXPECT_EQ(ls.preemptions, 0u);
    EXPECT_EQ(ls.suspendedCycles, 0u);
    // Both still run to completion (hogs resume for their share
    // window, and permanently once the LS tenant retires).
    EXPECT_GT(ls.finishCycle, 0u);
    EXPECT_GT(hog.finishCycle, 0u);
    // Suspended slots are still charged (to no_warp), so the closed
    // account survives preemption.
    const unsigned share = cfg.sm.numSchedulers / 2;
    EXPECT_EQ(laneSlots(ls), share * stats.cycles);
    EXPECT_EQ(laneSlots(hog), share * stats.cycles);
}

TEST(TenantQos, PreemptionShortensTheLatencySensitiveTail)
{
    // The isolation claim behind the multi_tenant figure: under QoS
    // preemption (+ priority reserve) the LS tenant's finish cycle
    // must not be worse than under free-for-all sharing.
    sim::GpuConfig ffa =
        pairConfig(sim::ProviderKind::Regless, "nn", "srad_v1",
                   CapacityPolicy::FreeForAll);
    sim::GpuConfig qos =
        pairConfig(sim::ProviderKind::Regless, "nn", "srad_v1",
                   CapacityPolicy::PriorityReserve);
    qos.tenants.qosPreemption = true;
    qos.tenants.qosInterval = 1000;
    qos.tenants.qosShare = 0.5;

    sim::GpuSimulator ffa_gpu(tenantKernels(ffa), ffa);
    sim::GpuSimulator qos_gpu(tenantKernels(qos), qos);
    const sim::RunStats ffa_stats = ffa_gpu.run();
    const sim::RunStats qos_stats = qos_gpu.run();
    EXPECT_LE(qos_stats.tenants[0].finishCycle,
              ffa_stats.tenants[0].finishCycle);
}

// ---------------------------------------------------------------------
// Serialization: tenant lanes round-trip through the JSON schema and
// the tenant block is part of the config fingerprint.
// ---------------------------------------------------------------------

TEST(TenantStats, LanesRoundTripThroughJson)
{
    const sim::GpuConfig cfg =
        pairConfig(sim::ProviderKind::Regless, "nn", "hotspot",
                   CapacityPolicy::StaticQuota);
    sim::GpuSimulator gpu(tenantKernels(cfg), cfg);
    const sim::RunStats stats = gpu.run();
    ASSERT_EQ(stats.tenants.size(), 2u);
    const sim::RunStats parsed = sim::fromJson(sim::toJson(stats));
    EXPECT_TRUE(parsed == stats);
}

TEST(TenantConfigFingerprint, TenantBlockChangesTheCanonicalText)
{
    const sim::GpuConfig base =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    sim::GpuConfig paired = base;
    paired.tenants.workloads = {{"nn", 1}, {"srad_v1", 0}};
    sim::GpuConfig policy = paired;
    policy.tenants.policy = CapacityPolicy::StaticQuota;
    sim::GpuConfig qos = paired;
    qos.tenants.qosPreemption = true;

    const std::string a = sim::configCanonicalText(base);
    const std::string b = sim::configCanonicalText(paired);
    const std::string c = sim::configCanonicalText(policy);
    const std::string d = sim::configCanonicalText(qos);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_NE(b, d);
}

// ---------------------------------------------------------------------
// TenantArbiter policy math (pure unit tests over usage callbacks).
// ---------------------------------------------------------------------

class ArbiterFixture : public ::testing::Test
{
  protected:
    std::uint64_t use[2] = {0, 0};

    void registerBoth(regfile::TenantArbiter &arbiter,
                      unsigned prio0, unsigned prio1)
    {
        arbiter.registerTenant(0, prio0, [this] { return use[0]; });
        arbiter.registerTenant(1, prio1, [this] { return use[1]; });
    }
};

TEST_F(ArbiterFixture, FreeForAllCapsOnlyTheTotal)
{
    regfile::TenantArbiter arbiter(CapacityPolicy::FreeForAll, 100);
    registerBoth(arbiter, 0, 0);
    use[0] = 90;
    EXPECT_TRUE(arbiter.mayReserve(1, 10));
    EXPECT_FALSE(arbiter.mayReserve(1, 11));
    // One tenant may hog the whole pool.
    use[0] = 0;
    EXPECT_TRUE(arbiter.mayReserve(0, 100));
}

TEST_F(ArbiterFixture, StaticQuotaPartitionsThePool)
{
    regfile::TenantArbiter arbiter(CapacityPolicy::StaticQuota, 100);
    registerBoth(arbiter, 0, 0);
    // Default quota: total / tenants.
    EXPECT_TRUE(arbiter.mayReserve(0, 50));
    EXPECT_FALSE(arbiter.mayReserve(0, 51));
    use[1] = 0; // the co-tenant's emptiness does not help
    use[0] = 50;
    EXPECT_FALSE(arbiter.mayReserve(0, 1));
    EXPECT_TRUE(arbiter.mayReserve(1, 50));
    // Explicit quota overrides the even split.
    arbiter.setQuotaLines(30);
    EXPECT_FALSE(arbiter.mayReserve(1, 31));
    EXPECT_TRUE(arbiter.mayReserve(1, 30));
}

TEST_F(ArbiterFixture, PriorityReserveHoldsBackBestEffort)
{
    regfile::TenantArbiter arbiter(CapacityPolicy::PriorityReserve,
                                   100);
    arbiter.setReserveFraction(0.25);
    registerBoth(arbiter, /*prio0=*/1, /*prio1=*/0);
    // Best effort allocates only outside the 25-line reserve.
    EXPECT_TRUE(arbiter.mayReserve(1, 75));
    EXPECT_FALSE(arbiter.mayReserve(1, 76));
    // Priority tenants allocate from the whole pool.
    EXPECT_TRUE(arbiter.mayReserve(0, 100));
    // Priority usage squeezes best effort further.
    use[0] = 50;
    EXPECT_TRUE(arbiter.mayReserve(1, 50));
    use[0] = 80;
    EXPECT_TRUE(arbiter.mayReserve(1, 20));
    EXPECT_FALSE(arbiter.mayReserve(1, 21));
}

// ---------------------------------------------------------------------
// Scoreboard warp partitioning: a tenant's scoreboard is indexed by
// global warp id over an explicit [base, base + extent) range, and
// anything outside the range is an immediate panic, not silent
// corruption.
// ---------------------------------------------------------------------

TEST(ScoreboardRange, BaseAndExtentBoundTheWarpIndexSpace)
{
    arch::Scoreboard sb(/*num_warps=*/4, /*num_regs=*/8,
                        /*warp_base=*/32);
    const std::vector<RegId> regs{2};
    // In-range ids work, addressed globally.
    EXPECT_EQ(sb.readyAt(32, 2), 0u);
    EXPECT_EQ(sb.readyAt(35, 7), 0u);
    EXPECT_EQ(sb.lastPendingWrite(33, regs), 0u);
    // Out-of-partition warp ids die loudly instead of silently
    // reading a neighbouring tenant's state.
    EXPECT_THROW(sb.readyAt(31, 2), sim::SimError);
    EXPECT_THROW(sb.readyAt(36, 2), sim::SimError);
    EXPECT_THROW(sb.lastPendingWrite(0, regs), sim::SimError);
}

// ---------------------------------------------------------------------
// Multi-tenant multi-SM: the lockstep epoch loop hosts co-resident
// tenants on every SM and aggregates their lanes.
// ---------------------------------------------------------------------

TEST(TenantMultiSm, LanesAggregateAcrossSms)
{
    const sim::GpuConfig cfg =
        pairConfig(sim::ProviderKind::Regless, "nn", "hotspot",
                   CapacityPolicy::FreeForAll);
    constexpr unsigned sms = 4;
    sim::MultiSmSimulator multi(tenantKernels(cfg), cfg, sms,
                                /*threads=*/1);
    const sim::RunStats total = multi.run();
    ASSERT_EQ(total.tenants.size(), 2u);
    ASSERT_EQ(multi.perSm().size(), sms);
    for (unsigned t = 0; t < 2; ++t) {
        std::uint64_t insns = 0;
        Cycle finish = 0;
        for (const sim::RunStats &s : multi.perSm()) {
            ASSERT_EQ(s.tenants.size(), 2u);
            insns += s.tenants[t].insns;
            finish = std::max(finish, s.tenants[t].finishCycle);
        }
        EXPECT_EQ(total.tenants[t].insns, insns);
        EXPECT_EQ(total.tenants[t].finishCycle, finish);
        EXPECT_GT(insns, 0u);
    }
}

} // namespace
} // namespace regless
