/**
 * @file
 * Tests for the static value-range analysis (DESIGN.md §14): lattice
 * laws (join/widen properties on randomized elements), exact per-opcode
 * transfer functions, encoding classification and its runtime guard,
 * whole-kernel fixpoint facts on hand-built kernels, and the end-to-end
 * static/hybrid compression sweep over all Rodinia workloads — which
 * must be byte-deterministic and never let a value escape its proven
 * encoding.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "compiler/compiler.hh"
#include "compiler/staging_checker.hh"
#include "compiler/value_range.hh"
#include "golden_runs.hh"
#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"
#include "regless/compressor.hh"
#include "regless/shadow_checker.hh"
#include "mem/memory_system.hh"
#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "workloads/kernel_builder.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

using compiler::classifyEncoding;
using compiler::encodingBytes;
using compiler::encodingHolds;
using compiler::encodingImplied;
using compiler::join;
using compiler::leq;
using compiler::StaticEncoding;
using compiler::transferInsn;
using compiler::ValueFacts;
using compiler::ValueRangeAnalysis;
using compiler::widen;
using workloads::KernelBuilder;

/* ---------------- lattice laws ---------------- */

/** Deterministic xorshift stream for randomized lattice elements. */
class FactsGen
{
  public:
    explicit FactsGen(std::uint64_t seed) : _state(seed | 1) {}

    std::uint64_t
    next()
    {
        _state ^= _state >> 12;
        _state ^= _state << 25;
        _state ^= _state >> 27;
        return _state * 0x2545f4914f6cdd1dULL;
    }

    ValueFacts
    facts()
    {
        switch (next() % 6) {
          case 0:
            return ValueFacts{};
          case 1:
            return ValueFacts::top();
          case 2:
            return ValueFacts::constant(
                static_cast<std::uint32_t>(next()));
          case 3: {
            std::uint32_t a = static_cast<std::uint32_t>(next());
            std::uint32_t b = static_cast<std::uint32_t>(next());
            return ValueFacts::range(std::min(a, b), std::max(a, b));
          }
          case 4:
            return ValueFacts::lanesAffine(
                static_cast<std::uint32_t>(next() % 9));
          default: {
            // Small ranges exercise the interval logic near-degenerate.
            std::uint32_t lo = static_cast<std::uint32_t>(next() % 256);
            return ValueFacts::range(lo, lo + next() % 16);
          }
        }
    }

  private:
    std::uint64_t _state;
};

TEST(ValueFactsLattice, JoinIsCommutativeAndAnUpperBound)
{
    FactsGen gen(17);
    for (int i = 0; i < 2000; ++i) {
        const ValueFacts a = gen.facts();
        const ValueFacts b = gen.facts();
        const ValueFacts j = join(a, b);
        EXPECT_EQ(j, join(b, a))
            << a.toString() << " vs " << b.toString();
        EXPECT_TRUE(leq(a, j))
            << a.toString() << " not <= " << j.toString();
        EXPECT_TRUE(leq(b, j))
            << b.toString() << " not <= " << j.toString();
    }
}

TEST(ValueFactsLattice, JoinIsIdempotentWithBottomIdentity)
{
    FactsGen gen(99);
    for (int i = 0; i < 500; ++i) {
        const ValueFacts a = gen.facts();
        EXPECT_EQ(join(a, a), a) << a.toString();
        EXPECT_EQ(join(a, ValueFacts{}), a) << a.toString();
        EXPECT_EQ(join(ValueFacts{}, a), a) << a.toString();
    }
}

TEST(ValueFactsLattice, JoinIsMonotone)
{
    // leq(a, b) implies leq(join(a, c), join(b, c)).
    FactsGen gen(5);
    unsigned ordered_pairs = 0;
    for (int i = 0; i < 4000; ++i) {
        const ValueFacts a = gen.facts();
        const ValueFacts b = gen.facts();
        const ValueFacts c = gen.facts();
        if (!leq(a, b))
            continue;
        ++ordered_pairs;
        EXPECT_TRUE(leq(join(a, c), join(b, c)))
            << a.toString() << " <= " << b.toString() << " but join with "
            << c.toString() << " is not monotone";
    }
    // The generator produces bottoms/tops, so order pairs must occur.
    EXPECT_GT(ordered_pairs, 100u);
}

TEST(ValueFactsLattice, WideningIsAnUpperBoundAndTerminates)
{
    FactsGen gen(23);
    for (int seq = 0; seq < 200; ++seq) {
        ValueFacts w = gen.facts();
        unsigned changes = 0;
        for (int step = 0; step < 1000; ++step) {
            const ValueFacts next = gen.facts();
            const ValueFacts widened = widen(w, join(w, next));
            EXPECT_TRUE(leq(w, widened));
            EXPECT_TRUE(leq(next, widened)) << "widen lost "
                                            << next.toString();
            if (widened != w)
                ++changes;
            w = widened;
        }
        // Each bound can only blow to its extreme once and the shape
        // can only be dropped once: every ascending chain is short.
        EXPECT_LE(changes, 4u) << "widening chain did not stabilize";
    }
}

/* ---------------- per-opcode transfers ---------------- */

ir::Instruction
insn(ir::Opcode op, std::vector<RegId> srcs, std::int64_t imm = 0)
{
    return ir::Instruction(op, 0, std::move(srcs), imm);
}

TEST(ValueRangeTransfer, ConstantsAndMoves)
{
    ValueFacts f = transferInsn(insn(ir::Opcode::MovImm, {}, 42), {});
    EXPECT_TRUE(f.isConstant());
    EXPECT_EQ(f.lo, 42u);
    EXPECT_TRUE(f.uniform());

    ValueFacts src = ValueFacts::range(3, 9);
    EXPECT_EQ(transferInsn(insn(ir::Opcode::Mov, {1}), {src}), src);
}

TEST(ValueRangeTransfer, ThreadAndBlockIndices)
{
    ValueFacts tid = transferInsn(insn(ir::Opcode::Tid, {}), {});
    EXPECT_TRUE(tid.affine);
    EXPECT_EQ(tid.stride, 1u);
    EXPECT_FALSE(tid.uniform());

    ValueFacts cta = transferInsn(insn(ir::Opcode::CtaId, {}), {});
    EXPECT_TRUE(cta.uniform());
}

TEST(ValueRangeTransfer, AdditionIsExactOnConstantsAndStrides)
{
    ValueFacts sum =
        transferInsn(insn(ir::Opcode::IAdd, {1, 2}),
                     {ValueFacts::constant(10), ValueFacts::range(1, 5)});
    EXPECT_EQ(sum.lo, 11u);
    EXPECT_EQ(sum.hi, 15u);

    // tid + uniform keeps the lane stride.
    ValueFacts strided =
        transferInsn(insn(ir::Opcode::IAdd, {1, 2}),
                     {ValueFacts::lanesAffine(1), ValueFacts::constant(8)});
    EXPECT_TRUE(strided.affine);
    EXPECT_EQ(strided.stride, 1u);

    ValueFacts imm =
        transferInsn(insn(ir::Opcode::IAddImm, {1}, 7),
                     {ValueFacts::constant(1)});
    EXPECT_TRUE(imm.isConstant());
    EXPECT_EQ(imm.lo, 8u);
}

TEST(ValueRangeTransfer, SubtractionAndMultiplication)
{
    ValueFacts sub =
        transferInsn(insn(ir::Opcode::ISub, {1, 2}),
                     {ValueFacts::lanesAffine(4), ValueFacts::lanesAffine(1)});
    EXPECT_TRUE(sub.affine);
    EXPECT_EQ(sub.stride, 3u);

    ValueFacts mul =
        transferInsn(insn(ir::Opcode::IMul, {1, 2}),
                     {ValueFacts::range(2, 3), ValueFacts::constant(5)});
    EXPECT_EQ(mul.lo, 10u);
    EXPECT_EQ(mul.hi, 15u);

    // Scaling an affine value scales the stride (tid * 4).
    ValueFacts scaled =
        transferInsn(insn(ir::Opcode::IMulImm, {1}, 4),
                     {ValueFacts::lanesAffine(1)});
    EXPECT_TRUE(scaled.affine);
    EXPECT_EQ(scaled.stride, 4u);

    ValueFacts mad = transferInsn(
        insn(ir::Opcode::IMad, {1, 2, 3}),
        {ValueFacts::constant(3), ValueFacts::constant(4),
         ValueFacts::constant(5)});
    EXPECT_TRUE(mad.isConstant());
    EXPECT_EQ(mad.lo, 17u);
}

TEST(ValueRangeTransfer, ShiftsWithConstantAmounts)
{
    ValueFacts shl =
        transferInsn(insn(ir::Opcode::Shl, {1, 2}),
                     {ValueFacts::range(1, 4), ValueFacts::constant(2)});
    EXPECT_EQ(shl.lo, 4u);
    EXPECT_EQ(shl.hi, 16u);

    ValueFacts shr =
        transferInsn(insn(ir::Opcode::Shr, {1, 2}),
                     {ValueFacts::range(16, 64), ValueFacts::constant(4)});
    EXPECT_EQ(shr.lo, 1u);
    EXPECT_EQ(shr.hi, 4u);

    // Unknown shift amount: no interval claim survives.
    ValueFacts unknown =
        transferInsn(insn(ir::Opcode::Shl, {1, 2}),
                     {ValueFacts::range(1, 4), ValueFacts::range(0, 3)});
    EXPECT_TRUE(unknown.isTop());
}

TEST(ValueRangeTransfer, BitwiseOpsBoundTheResult)
{
    ValueFacts band =
        transferInsn(insn(ir::Opcode::And, {1, 2}),
                     {ValueFacts::top(), ValueFacts::constant(0xff)});
    EXPECT_EQ(band.lo, 0u);
    EXPECT_EQ(band.hi, 0xffu);

    ValueFacts bor =
        transferInsn(insn(ir::Opcode::Or, {1, 2}),
                     {ValueFacts::range(8, 15), ValueFacts::range(1, 3)});
    EXPECT_GE(bor.lo, 8u);
    EXPECT_LE(bor.hi, 15u); // 0b1111 is the covering mask

    ValueFacts bxor =
        transferInsn(insn(ir::Opcode::Xor, {1, 2}),
                     {ValueFacts::range(0, 5), ValueFacts::range(0, 9)});
    EXPECT_EQ(bxor.lo, 0u);
    EXPECT_LE(bxor.hi, 15u);
}

TEST(ValueRangeTransfer, MinMaxAndPredicates)
{
    ValueFacts imin =
        transferInsn(insn(ir::Opcode::IMin, {1, 2}),
                     {ValueFacts::range(4, 10), ValueFacts::range(6, 8)});
    EXPECT_EQ(imin.lo, 4u);
    EXPECT_EQ(imin.hi, 8u);

    ValueFacts imax =
        transferInsn(insn(ir::Opcode::IMax, {1, 2}),
                     {ValueFacts::range(4, 10), ValueFacts::range(6, 8)});
    EXPECT_EQ(imax.lo, 6u);
    EXPECT_EQ(imax.hi, 10u);

    for (ir::Opcode op : {ir::Opcode::SetLt, ir::Opcode::SetGe,
                          ir::Opcode::SetEq, ir::Opcode::SetNe}) {
        ValueFacts p = transferInsn(
            insn(op, {1, 2}), {ValueFacts::top(), ValueFacts::top()});
        EXPECT_EQ(p.lo, 0u);
        EXPECT_EQ(p.hi, 1u);
    }
}

TEST(ValueRangeTransfer, SelectHullsArmsAndDropsDivergentShape)
{
    const ValueFacts a = ValueFacts::constant(2);
    const ValueFacts b = ValueFacts::constant(7);

    ValueFacts uniform_sel = transferInsn(
        insn(ir::Opcode::Selp, {1, 2, 3}),
        {a, b, ValueFacts::constant(1)});
    EXPECT_EQ(uniform_sel.lo, 2u);
    EXPECT_EQ(uniform_sel.hi, 7u);

    ValueFacts divergent_sel = transferInsn(
        insn(ir::Opcode::Selp, {1, 2, 3}),
        {a, b, ValueFacts::range(0, 1)});
    EXPECT_FALSE(divergent_sel.affine)
        << "lanes may mix both arms; uniformity must not survive";
}

TEST(ValueRangeTransfer, LoadsAndFloatsYieldTop)
{
    EXPECT_TRUE(transferInsn(insn(ir::Opcode::LdGlobal, {1}, 0),
                             {ValueFacts::constant(0x1000)})
                    .isTop());
    EXPECT_TRUE(transferInsn(insn(ir::Opcode::LdShared, {1}, 0),
                             {ValueFacts::constant(16)})
                    .isTop());
    ValueFacts fadd =
        transferInsn(insn(ir::Opcode::FAdd, {1, 2}),
                     {ValueFacts::range(0, 8), ValueFacts::range(0, 8)});
    EXPECT_EQ(fadd.lo, 0u);
    EXPECT_EQ(fadd.hi, 0xffffffffu);
    // All-uniform float inputs still broadcast.
    ValueFacts funi =
        transferInsn(insn(ir::Opcode::FMul, {1, 2}),
                     {ValueFacts::constant(3), ValueFacts::constant(4)});
    EXPECT_TRUE(funi.uniform());

    EXPECT_TRUE(transferInsn(insn(ir::Opcode::Rcp, {1}),
                             {ValueFacts::range(0, 4)})
                    .hi == 0xffffffffu);
}

/* ---------------- encodings ---------------- */

TEST(StaticEncodingTest, ClassificationPicksTheStrongestProvenForm)
{
    EXPECT_EQ(classifyEncoding(ValueFacts::constant(5)),
              StaticEncoding::UniformScalar);
    EXPECT_EQ(classifyEncoding(ValueFacts::lanesAffine(0)),
              StaticEncoding::UniformScalar);
    EXPECT_EQ(classifyEncoding(ValueFacts::range(0, 0xffff)),
              StaticEncoding::NarrowWidth);
    EXPECT_EQ(classifyEncoding(ValueFacts::range(0xffff8000u,
                                                 0xffffffffu)),
              StaticEncoding::SignCompressed);
    EXPECT_EQ(classifyEncoding(ValueFacts::top()), StaticEncoding::None);
    EXPECT_EQ(classifyEncoding(ValueFacts{}), StaticEncoding::None);
}

TEST(StaticEncodingTest, ClassifiedEncodingIsAlwaysImplied)
{
    FactsGen gen(31);
    for (int i = 0; i < 2000; ++i) {
        const ValueFacts f = gen.facts();
        EXPECT_TRUE(encodingImplied(classifyEncoding(f), f))
            << f.toString();
    }
}

TEST(StaticEncodingTest, RuntimeGuardAgreesWithTheFacts)
{
    // Lanes drawn from inside the facts must pass the runtime guard of
    // any encoding those facts imply.
    ir::LaneValues uniform{};
    uniform.fill(123);
    EXPECT_TRUE(encodingHolds(StaticEncoding::UniformScalar, uniform));
    EXPECT_TRUE(encodingHolds(StaticEncoding::NarrowWidth, uniform));

    ir::LaneValues divergent{};
    for (unsigned i = 0; i < warpSize; ++i)
        divergent[i] = i;
    EXPECT_FALSE(encodingHolds(StaticEncoding::UniformScalar, divergent));
    EXPECT_TRUE(encodingHolds(StaticEncoding::NarrowWidth, divergent));

    ir::LaneValues wide{};
    wide.fill(0x12345678u);
    EXPECT_FALSE(encodingHolds(StaticEncoding::NarrowWidth, wide));

    ir::LaneValues negatives{};
    negatives.fill(0xfffffff0u); // -16
    EXPECT_TRUE(encodingHolds(StaticEncoding::SignCompressed, negatives));
    EXPECT_FALSE(encodingHolds(StaticEncoding::SignCompressed, wide));

    EXPECT_TRUE(encodingHolds(StaticEncoding::None, wide));
}

TEST(StaticEncodingTest, BytesMatchTheLineBudget)
{
    EXPECT_EQ(encodingBytes(StaticEncoding::UniformScalar), 4u);
    EXPECT_EQ(encodingBytes(StaticEncoding::NarrowWidth),
              warpSize * 2u);
    EXPECT_EQ(encodingBytes(StaticEncoding::SignCompressed),
              warpSize * 2u);
    EXPECT_EQ(encodingBytes(StaticEncoding::None), regBytes);
}

/* ---------------- whole-kernel fixpoint ---------------- */

struct AnalyzedKernel
{
    explicit AnalyzedKernel(ir::Kernel k)
        : kernel(std::move(k)), cfg(kernel), live(kernel, cfg),
          vra(kernel, cfg, live)
    {
    }

    ir::Kernel kernel;
    ir::CfgAnalysis cfg;
    ir::Liveness live;
    ValueRangeAnalysis vra;
};

TEST(ValueRangeAnalysisTest, StraightLineFactsAreExact)
{
    KernelBuilder b("straight");
    RegId t = b.tid();
    RegId c = b.movi(100);
    RegId d = b.iaddi(c, 20);
    RegId addr = b.imuli(t, 4);
    b.st(d, addr);
    AnalyzedKernel a(b.build());

    // Find the store and ask for the operand facts right before it.
    for (Pc pc = 0; pc < a.kernel.numInsns(); ++pc) {
        if (a.kernel.insn(pc).op() != ir::Opcode::StGlobal)
            continue;
        const ValueFacts &data = a.vra.before(pc, d);
        EXPECT_TRUE(data.isConstant());
        EXPECT_EQ(data.lo, 120u);
        const ValueFacts &af = a.vra.before(pc, addr);
        EXPECT_TRUE(af.affine);
        EXPECT_EQ(af.stride, 4u);
        return;
    }
    FAIL() << "no store found";
}

TEST(ValueRangeAnalysisTest, BranchMergeJoinsBothArms)
{
    // if (tid < c) x = 1; else x = 5;  =>  x in [1, 5] at the merge.
    KernelBuilder b("diamond");
    RegId t = b.tid();
    RegId lim = b.movi(16);
    RegId p = b.setLt(t, lim);
    RegId x = b.movi(0);
    workloads::Label then_arm = b.newLabel();
    workloads::Label merged = b.newLabel();
    b.braIf(p, then_arm);
    b.moviTo(x, 5);
    b.jmp(merged);
    b.bind(then_arm);
    b.moviTo(x, 1);
    b.bind(merged);
    b.st(x, b.imuli(t, 4));
    AnalyzedKernel a(b.build());

    for (Pc pc = 0; pc < a.kernel.numInsns(); ++pc) {
        if (a.kernel.insn(pc).op() != ir::Opcode::StGlobal)
            continue;
        const ValueFacts &f = a.vra.before(pc, x);
        ASSERT_FALSE(f.isBottom());
        // Both arms execute under a partial mask, so each write merges
        // with the initial broadcast (Warp::writeReg keeps inactive
        // lanes): the merge hulls {0, 1, 5}, not just the two arms.
        EXPECT_EQ(f.lo, 0u);
        EXPECT_EQ(f.hi, 5u);
        // The branch is tid-dependent: lanes can take different arms,
        // so uniformity must not survive into the merge.
        EXPECT_FALSE(f.uniform());
        return;
    }
    FAIL() << "no store found";
}

TEST(ValueRangeAnalysisTest, LoopWidensInsteadOfDiverging)
{
    // i starts at 0 and increments per iteration: the back-edge join
    // produces an ever-growing interval, so the fixpoint must widen to
    // terminate while staying sound (every value i takes is covered).
    KernelBuilder b("loop");
    RegId t = b.tid();
    RegId i = b.movi(0);
    RegId lim = b.movi(64);
    workloads::Label head = b.newLabel();
    b.bind(head);
    b.iaddiTo(i, i, 1);
    RegId p = b.setLt(i, lim);
    b.braIf(p, head);
    b.st(i, b.imuli(t, 4));
    AnalyzedKernel a(b.build());

    for (Pc pc = 0; pc < a.kernel.numInsns(); ++pc) {
        if (a.kernel.insn(pc).op() != ir::Opcode::StGlobal)
            continue;
        const ValueFacts &f = a.vra.before(pc, i);
        ASSERT_FALSE(f.isBottom());
        // Soundness: the counter reaches at least 64 before the loop
        // exits, so the widened interval must cover it. (Uniformity is
        // conservatively dropped: the loop body sits in the back-edge
        // branch's divergence region, so its defs are treated as
        // masked writes.)
        EXPECT_EQ(f.lo, 0u);
        EXPECT_GE(f.hi, 64u);
        return;
    }
    FAIL() << "no store found";
}

TEST(ValueRangeAnalysisTest, StraightLineKernelsRunFullMask)
{
    KernelBuilder b("flat");
    b.st(b.movi(1), b.imuli(b.tid(), 4));
    AnalyzedKernel a(b.build());
    for (const ir::BasicBlock &bb : a.kernel.blocks())
        EXPECT_TRUE(a.vra.fullMaskBlock(bb.id()));
}

TEST(ValueRangeAnalysisTest, KernelWideTableCoversEveryDef)
{
    // staticEncodings() must be sound for ANY def's value, because the
    // compressor evicts at reclaim time with no region context: a
    // register holding a narrow constant in one block and a load result
    // in another must demote to None.
    KernelBuilder b("mixed");
    RegId t = b.tid();
    RegId x = b.movi(3); // narrow here...
    b.st(x, b.imuli(t, 4));
    b.ldTo(x, b.imuli(t, 4)); // ...but arbitrary here
    b.st(x, b.imuli(t, 8));
    ir::Kernel k = b.build();
    compiler::CompiledKernel ck = compiler::compile(std::move(k));
    EXPECT_EQ(ck.staticEncodings()[x], StaticEncoding::None);
}

/* ---------------- compressor static path ---------------- */

TEST(CompressorStaticTest, StaticHitsSkipTheMatcherAndGuardUnsound)
{
    mem::MemorySystem mem;
    staging::CompressorConfig ccfg;
    staging::Compressor comp("c", ccfg, mem, 0x6000'0000, 64);
    std::vector<StaticEncoding> table(16, StaticEncoding::None);
    table[3] = StaticEncoding::UniformScalar;
    comp.setStaticEncodings(staging::CompressionMode::Static, &table);

    ir::LaneValues uniform{};
    uniform.fill(77);
    staging::Compressor::EvictResult hit =
        comp.compressEvict(0, 3, uniform, 0);
    EXPECT_TRUE(hit.compressed);
    EXPECT_TRUE(hit.staticHit);
    EXPECT_FALSE(hit.unsound);

    // The lane guard rejects values that escape the proof: the line
    // goes incompressible instead of mis-decoding.
    ir::LaneValues divergent{};
    for (unsigned i = 0; i < warpSize; ++i)
        divergent[i] = i * 1000;
    staging::Compressor::EvictResult escape =
        comp.compressEvict(0, 3, divergent, 0);
    EXPECT_FALSE(escape.compressed);
    EXPECT_TRUE(escape.unsound);

    // Static mode never invokes the runtime matcher on None.
    ir::LaneValues constant{};
    constant.fill(9);
    EXPECT_FALSE(comp.compressEvict(0, 5, constant, 0).compressed);
}

TEST(CompressorStaticTest, HybridFallsBackToTheMatcher)
{
    mem::MemorySystem mem;
    staging::CompressorConfig ccfg;
    staging::Compressor comp("c", ccfg, mem, 0x6000'0000, 64);
    std::vector<StaticEncoding> table(16, StaticEncoding::None);
    table[3] = StaticEncoding::UniformScalar;
    comp.setStaticEncodings(staging::CompressionMode::Hybrid, &table);

    // Escapes the static proof but matches the dynamic stride pattern:
    // hybrid mode recovers it.
    ir::LaneValues stride{};
    for (unsigned i = 0; i < warpSize; ++i)
        stride[i] = 100 + i;
    staging::Compressor::EvictResult r =
        comp.compressEvict(0, 3, stride, 0);
    EXPECT_TRUE(r.compressed);
    EXPECT_TRUE(r.unsound);
    EXPECT_FALSE(r.staticHit);

    // No static encoding at all: plain dynamic matching.
    ir::LaneValues constant{};
    constant.fill(4);
    EXPECT_TRUE(comp.compressEvict(0, 5, constant, 0).compressed);
}

/* ---------------- finding codes ---------------- */

bool
hasCode(const std::vector<compiler::Finding> &findings, const char *code)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&](const compiler::Finding &f) {
                           return f.code == code;
                       });
}

compiler::CompiledKernel
rebuild(const compiler::CompiledKernel &ck,
        std::vector<compiler::Region> regions)
{
    return compiler::CompiledKernel(ck.kernel(), std::move(regions),
                                    ck.lifetimeStats(),
                                    ck.metadataInsns());
}

/**
 * Forge @a enc onto the first evicted register whose recomputed facts
 * do NOT imply it. @return the mutated region list, empty if no
 * eligible site exists in @a ck.
 */
std::vector<compiler::Region>
forgeEncoding(const compiler::CompiledKernel &ck, StaticEncoding enc)
{
    ir::CfgAnalysis cfg(ck.kernel());
    ir::Liveness live(ck.kernel(), cfg);
    ValueRangeAnalysis vra(ck.kernel(), cfg, live);
    auto regions = ck.regions();
    for (compiler::Region &region : regions) {
        for (const auto &[pc, regs] : region.evicts) {
            for (RegId r : regs) {
                if (encodingImplied(enc, vra.after(pc, r)))
                    continue;
                region.encodings[r] = enc;
                return regions;
            }
        }
    }
    return {};
}

TEST(ValueRangeLint, ForgedNarrowEncodingIsUnsound)
{
    // "Widen a constant past its proven range": claim 16 bits for a
    // register whose facts do not bound it.
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("hotspot"));
    auto regions = forgeEncoding(ck, StaticEncoding::NarrowWidth);
    ASSERT_FALSE(regions.empty()) << "no unprovable evict site";
    std::vector<compiler::Finding> findings =
        compiler::checkValueRanges(rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::encodingUnsound))
        << compiler::formatFindings(findings);
    EXPECT_TRUE(compiler::hasErrors(findings));
}

TEST(ValueRangeLint, ForgedUniformEncodingIsUnsound)
{
    // "Flip a uniform broadcast to divergent": claim lane-uniformity
    // for a register the analysis cannot prove uniform.
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("srad_v2"));
    auto regions = forgeEncoding(ck, StaticEncoding::UniformScalar);
    ASSERT_FALSE(regions.empty()) << "no divergent evict site";
    std::vector<compiler::Finding> findings = compiler::lintCompiledKernel(
        rebuild(ck, std::move(regions)));
    EXPECT_TRUE(hasCode(findings, compiler::codes::encodingUnsound))
        << compiler::formatFindings(findings);
}

TEST(ValueRangeLint, EncodingWithoutAnEvictPointIsUnsound)
{
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("nn"));
    auto regions = ck.regions();
    // Record an encoding for a register the region never evicts.
    for (compiler::Region &region : regions) {
        bool evicted0 = false;
        for (const auto &[pc, regs] : region.evicts)
            evicted0 = evicted0 || std::count(regs.begin(), regs.end(),
                                              RegId{0});
        if (evicted0)
            continue;
        region.encodings[0] = StaticEncoding::UniformScalar;
        std::vector<compiler::Finding> findings =
            compiler::checkValueRanges(rebuild(ck, std::move(regions)));
        EXPECT_TRUE(hasCode(findings, compiler::codes::encodingUnsound))
            << compiler::formatFindings(findings);
        return;
    }
    FAIL() << "every region evicts r0?";
}

TEST(ValueRangeLint, AdvisoryWarningsAreOptIn)
{
    // Recorded encodings prove narrow footprints, yet every staged
    // line still claims 128 bytes: with --advisory that is a
    // bank-overclaim Warning; by default the lint stays silent.
    for (const std::string &name : workloads::rodiniaNames()) {
        compiler::CompiledKernel ck =
            compiler::compile(workloads::makeRodinia(name));
        bool any = false;
        for (const compiler::Region &region : ck.regions())
            any = any || !region.encodings.empty();
        if (!any)
            continue;
        std::vector<compiler::Finding> advisory =
            compiler::checkValueRanges(ck, /*advisory=*/true);
        EXPECT_TRUE(hasCode(advisory, compiler::codes::bankOverclaim))
            << name;
        EXPECT_FALSE(compiler::hasErrors(advisory)) << name;
        std::vector<compiler::Finding> silent =
            compiler::checkValueRanges(ck);
        EXPECT_TRUE(silent.empty())
            << name << ": " << compiler::formatFindings(silent);
        return;
    }
    FAIL() << "no Rodinia kernel records any static encoding";
}

TEST(ValueRangeLint, PreloadedConstantIsAdvisedDead)
{
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("nn"));
    ir::CfgAnalysis cfg(ck.kernel());
    ir::Liveness live(ck.kernel(), cfg);
    ValueRangeAnalysis vra(ck.kernel(), cfg, live);
    auto regions = ck.regions();
    // Forge a preload of a register that provably holds a compile-time
    // constant at the region entry: the staged line is pure waste.
    for (compiler::Region &region : regions) {
        for (RegId r = 0; r < ck.kernel().numRegs(); ++r) {
            if (!vra.before(region.startPc, r).isConstant())
                continue;
            region.preloads.push_back(compiler::Preload{r, false});
            std::vector<compiler::Finding> findings =
                compiler::checkValueRanges(
                    rebuild(ck, std::move(regions)), /*advisory=*/true);
            EXPECT_TRUE(
                hasCode(findings, compiler::codes::deadStagedLine))
                << compiler::formatFindings(findings);
            return;
        }
    }
    GTEST_SKIP() << "no provably constant register at a region entry";
}

TEST(ShadowCheckerTest, UnsoundEncodingEscapeIsARuntimeViolation)
{
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("nn"));
    staging::ShadowChecker checker(ck);
    EXPECT_TRUE(checker.violations().empty());
    checker.onEncodingUnsound(2, 7);
    ASSERT_EQ(checker.violations().size(), 1u);
    EXPECT_EQ(checker.violations().front().code,
              compiler::codes::rtEncodingUnsound);
    // Dedup: the same (warp-independent) escape reports once.
    checker.onEncodingUnsound(2, 7);
    EXPECT_EQ(checker.violations().size(), 1u);
}

/* ---------------- end-to-end static compression ---------------- */

class StaticCompressionSweep
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(StaticCompressionSweep, NeverEscapesItsProofOnRodinia)
{
    // The kernel-wide encoding table joins facts over every def site,
    // so no evicted value — at any reclaim time — may escape its
    // encoding: zero unsound events and zero runtime violations, in
    // both static-only and hybrid modes.
    for (staging::CompressionMode mode :
         {staging::CompressionMode::Static,
          staging::CompressionMode::Hybrid}) {
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
        cfg.regless.compressionMode = mode;
        cfg.regless.runtimeCheck = true;
        cfg.setOsuCapacity(256); // pressure: reclaim-time evictions
        sim::GpuSimulator gpu(workloads::makeRodinia(GetParam()), cfg);
        sim::RunStats stats = gpu.run();
        EXPECT_EQ(stats.compressorStaticUnsound, 0u)
            << GetParam() << " mode "
            << static_cast<int>(mode);
        EXPECT_TRUE(gpu.runtimeViolations().empty()) << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, StaticCompressionSweep,
    ::testing::ValuesIn(workloads::rodiniaNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(StaticCompressionTest, StaticModeIsByteDeterministic)
{
    for (const std::string &name : {std::string("hotspot"),
                                    std::string("backprop")}) {
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
        cfg.regless.compressionMode = staging::CompressionMode::Hybrid;

        sim::RunStats first =
            sim::runKernel(workloads::makeRodinia(name), cfg);
        sim::RunStats second =
            sim::runKernel(workloads::makeRodinia(name), cfg);
        EXPECT_TRUE(first == second) << name;

        // And invariant under event-driven cycle skipping.
        sim::GpuConfig no_skip = cfg;
        no_skip.sm.cycleSkip = false;
        sim::RunStats unskipped = testutil::withoutSkipMeta(
            sim::runKernel(workloads::makeRodinia(name), no_skip));
        EXPECT_TRUE(testutil::withoutSkipMeta(first) == unskipped)
            << name;
    }
}

TEST(StaticCompressionTest, ModeAndGatingAreFingerprinted)
{
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    const std::uint64_t base = sim::configFingerprint(cfg);

    sim::GpuConfig st = cfg;
    st.regless.compressionMode = staging::CompressionMode::Static;
    sim::GpuConfig hy = cfg;
    hy.regless.compressionMode = staging::CompressionMode::Hybrid;
    sim::GpuConfig ng = cfg;
    ng.regless.bankGating = false;

    EXPECT_NE(sim::configFingerprint(st), base);
    EXPECT_NE(sim::configFingerprint(hy), base);
    EXPECT_NE(sim::configFingerprint(hy), sim::configFingerprint(st));
    EXPECT_NE(sim::configFingerprint(ng), base);
}

TEST(BankGatingTest, GatedCyclesAccrueAndCutStaticEnergy)
{
    ir::Kernel kernel = workloads::makeRodinia("nn");
    sim::GpuConfig on =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    sim::GpuConfig off = on;
    off.regless.bankGating = false;

    sim::RunStats gated = sim::runKernel(kernel, on);
    sim::RunStats ungated = sim::runKernel(workloads::makeRodinia("nn"),
                                           off);
    EXPECT_GT(gated.osuGatedBankCycles, 0u);
    EXPECT_EQ(ungated.osuGatedBankCycles, 0u);
    // Gating is an observability knob, not a timing one.
    EXPECT_EQ(gated.cycles, ungated.cycles);

    sim::computeEnergy(gated, on);
    sim::computeEnergy(ungated, off);
    EXPECT_LT(gated.energy.regStatic, ungated.energy.regStatic);
    EXPECT_EQ(gated.energy.regDynamic, ungated.energy.regDynamic);
}

} // namespace
} // namespace regless
