/**
 * @file
 * Determinism tests for the parallel multi-SM executor: RunStats must
 * be bit-identical for any worker-thread count (threads == 1 is the
 * serial reference), across workloads and operand providers, and
 * run-to-run on randomized kernels. These are the invariants the
 * epoch-barrier scheme and the SM-id-ordered DRAM drain exist to
 * provide; see DESIGN.md "Parallel multi-SM execution".
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "sim/multi_sm.hh"
#include "workloads/kernel_builder.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

struct MultiRunResult
{
    sim::RunStats total;
    std::vector<sim::RunStats> perSm;
};

MultiRunResult
runMulti(const ir::Kernel &kernel, sim::ProviderKind provider,
         unsigned sms, unsigned threads)
{
    sim::MultiSmSimulator multi(
        kernel, sim::GpuConfig::forProvider(provider), sms, threads);
    MultiRunResult result;
    result.total = multi.run();
    result.perSm = multi.perSm();
    return result;
}

/** Field-exact comparison with a readable failure message. */
void
expectIdentical(const MultiRunResult &ref, const MultiRunResult &got,
                const std::string &what)
{
    EXPECT_TRUE(ref.total == got.total)
        << what << ": aggregate stats diverged (cycles " << ref.total.cycles
        << " vs " << got.total.cycles << ", insns " << ref.total.insns
        << " vs " << got.total.insns << ", dram "
        << ref.total.dramAccesses << " vs " << got.total.dramAccesses
        << ")";
    ASSERT_EQ(ref.perSm.size(), got.perSm.size()) << what;
    for (std::size_t i = 0; i < ref.perSm.size(); ++i) {
        EXPECT_TRUE(ref.perSm[i] == got.perSm[i])
            << what << ": per-SM stats diverged for SM " << i;
    }
}

/** Threads never change results: the headline acceptance invariant. */
class ThreadCountInvariance
    : public ::testing::TestWithParam<
          std::tuple<std::string, sim::ProviderKind>>
{
};

TEST_P(ThreadCountInvariance, BitIdenticalAcrossThreadCounts)
{
    const auto &[name, provider] = GetParam();
    constexpr unsigned sms = 8;
    ir::Kernel kernel = workloads::makeRodinia(name);

    MultiRunResult serial = runMulti(kernel, provider, sms, 1);
    for (unsigned threads : {2u, 8u}) {
        MultiRunResult parallel =
            runMulti(kernel, provider, sms, threads);
        expectIdentical(serial, parallel,
                        name + " with " + std::to_string(threads) +
                            " threads");
    }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAndProviders, ThreadCountInvariance,
    ::testing::Combine(::testing::Values("nn", "bfs", "hotspot"),
                       ::testing::Values(sim::ProviderKind::Baseline,
                                         sim::ProviderKind::Regless)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, sim::ProviderKind>> &info) {
        return std::get<0>(info.param) + "_" +
               sim::providerName(std::get<1>(info.param));
    });

TEST(MultiSmParallel, DefaultThreadCountMatchesSerial)
{
    ir::Kernel kernel = workloads::makeRodinia("nn");
    MultiRunResult serial =
        runMulti(kernel, sim::ProviderKind::Regless, 4, 1);
    // threads = 0 lets the simulator pick (hardware concurrency).
    MultiRunResult defaulted =
        runMulti(kernel, sim::ProviderKind::Regless, 4, 0);
    expectIdentical(serial, defaulted, "default thread count");
}

TEST(MultiSmParallel, ThreadOversubscriptionIsHarmless)
{
    ir::Kernel kernel = workloads::makeRodinia("bfs");
    MultiRunResult serial =
        runMulti(kernel, sim::ProviderKind::Baseline, 2, 1);
    // More threads than SMs: capped, still identical.
    MultiRunResult oversub =
        runMulti(kernel, sim::ProviderKind::Baseline, 2, 16);
    expectIdentical(serial, oversub, "16 threads on 2 SMs");
}

/**
 * Randomized stress: kernels synthesized with the builder DSL from a
 * seed. Exercises divergence, loops, loads/stores, and barrier-heavy
 * shapes the curated Rodinia set may miss.
 */
ir::Kernel
stressKernel(std::uint64_t seed)
{
    Rng rng(seed);
    workloads::KernelBuilder b("stress_" + std::to_string(seed));
    b.setWarpsPerBlock(4 + 4 * static_cast<unsigned>(rng.nextBelow(2)));

    RegId tid = b.tid();
    RegId addr = b.imuli(tid, 4);
    std::vector<RegId> pool{tid, addr};
    auto any = [&]() -> RegId {
        return pool[rng.nextBelow(pool.size())];
    };

    const unsigned segments = 2 + rng.nextBelow(3);
    for (unsigned seg = 0; seg < segments; ++seg) {
        switch (rng.nextBelow(4)) {
          case 0: {
            // Arithmetic chain to build register pressure.
            unsigned n = 3 + rng.nextBelow(5);
            for (unsigned i = 0; i < n; ++i)
                pool.push_back(rng.chance(0.5)
                                   ? b.iadd(any(), any())
                                   : b.imad(any(), any(), any()));
            break;
          }
          case 1: {
            // Strided global loads feeding an accumulator: DRAM
            // traffic, the state the epoch drain arbitrates.
            RegId masked = b.band(any(), b.movi(4095));
            RegId la = b.imuli(masked, 4);
            RegId v = b.ld(la, 1 << 16);
            RegId w = b.ld(la, (1 << 16) + (1 << 13));
            pool.push_back(b.iadd(v, w));
            b.st(pool.back(), addr, (2u << 20) + 8192 * seg);
            break;
          }
          case 2: {
            // Divergent diamond.
            RegId bit = b.band(tid, b.movi(1 + rng.nextBelow(7)));
            RegId p = b.setNe(bit, b.movi(0));
            workloads::Label else_l = b.newLabel();
            workloads::Label join = b.newLabel();
            RegId merged = b.reg();
            RegId np = b.setEq(p, b.movi(0));
            b.braIf(np, else_l);
            b.iaddTo(merged, any(), any());
            b.jmp(join);
            b.bind(else_l);
            b.iaddTo(merged, any(), b.movi(rng.nextRange(1, 40)));
            b.bind(join);
            pool.push_back(merged);
            break;
          }
          default: {
            // Counted loop with a load in the body.
            RegId acc = b.reg();
            b.movTo(acc, any());
            RegId i = b.reg();
            b.moviTo(i, 0);
            RegId limit = b.movi(2 + rng.nextBelow(5));
            workloads::Label head = b.newLabel();
            b.bind(head);
            RegId masked = b.band(acc, b.movi(2047));
            RegId la = b.imuli(masked, 4);
            b.iaddTo(acc, acc, b.ld(la, 1 << 18));
            b.iaddiTo(i, i, 1);
            RegId p = b.setLt(i, limit);
            b.braIf(p, head);
            pool.push_back(acc);
            break;
          }
        }
    }
    b.st(any(), addr, 3u << 20);
    return b.build();
}

class ParallelStress : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ParallelStress, SameSeedSameStatsTwice)
{
    const std::uint64_t seed = GetParam();
    constexpr unsigned sms = 4;
    constexpr unsigned threads = 4;

    // Build the kernel twice from the seed too: the whole pipeline
    // (synthesis -> compile -> parallel execution) must be repeatable.
    MultiRunResult first = runMulti(stressKernel(seed),
                                    sim::ProviderKind::Regless, sms,
                                    threads);
    MultiRunResult second = runMulti(stressKernel(seed),
                                     sim::ProviderKind::Regless, sms,
                                     threads);
    expectIdentical(first, second,
                    "seed " + std::to_string(seed) + " re-run");

    MultiRunResult serial = runMulti(stressKernel(seed),
                                     sim::ProviderKind::Regless, sms, 1);
    expectIdentical(serial, first,
                    "seed " + std::to_string(seed) + " vs serial");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelStress,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::atomic<int>> hits(103);
    for (auto &h : hits)
        h.store(0);
    for (int round = 0; round < 50; ++round) {
        pool.parallelFor(hits.size(), [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
    }
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 50);
}

TEST(ThreadPoolTest, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::thread::id self = std::this_thread::get_id();
    bool inline_everywhere = true;
    pool.parallelFor(17, [&](std::size_t) {
        if (std::this_thread::get_id() != self)
            inline_everywhere = false;
    });
    EXPECT_TRUE(inline_everywhere);
}

} // namespace
} // namespace regless
