/**
 * @file
 * Memory-system tests: cache tag/LRU/dirty behaviour, MSHR merging and
 * rejection, DRAM channel bandwidth, the L1 single-port rule, the
 * register-line write-back policy, and functional word storage.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/memory_system.hh"

namespace regless
{
namespace
{

using mem::Cache;
using mem::CacheConfig;
using mem::CacheResult;
using mem::DramConfig;
using mem::DramModel;
using mem::MemAccessResult;
using mem::MemConfig;
using mem::MemorySystem;
using mem::MemSource;
using mem::MemSpace;

CacheConfig
smallCache()
{
    CacheConfig cfg;
    cfg.sizeBytes = 4 * 1024; // 32 lines
    cfg.ways = 4;
    cfg.mshrs = 4;
    return cfg;
}

TEST(CacheTest, LineAlignment)
{
    EXPECT_EQ(mem::lineAddr(0), 0u);
    EXPECT_EQ(mem::lineAddr(127), 0u);
    EXPECT_EQ(mem::lineAddr(128), 128u);
    EXPECT_EQ(mem::lineAddr(0x12345), 0x12345u & ~127u);
}

TEST(CacheTest, MissThenHit)
{
    Cache cache("t", smallCache());
    CacheResult first = cache.access(0x1000, false, false, 0);
    EXPECT_FALSE(first.hit);
    CacheResult second = cache.access(0x1000, false, false, 10);
    EXPECT_TRUE(second.hit);
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_EQ(cache.stats().counter("hits").value(), 1u);
    EXPECT_EQ(cache.stats().counter("misses").value(), 1u);
}

TEST(CacheTest, SameLineDifferentWordsHit)
{
    Cache cache("t", smallCache());
    cache.access(0x1000, false, false, 0);
    EXPECT_TRUE(cache.access(0x1004, false, false, 1).hit);
    EXPECT_TRUE(cache.access(0x107c, false, false, 2).hit);
    EXPECT_FALSE(cache.access(0x1080, false, false, 3).hit);
}

TEST(CacheTest, LruEviction)
{
    // 8 sets x 4 ways; fill one set with 5 lines.
    Cache cache("t", smallCache());
    unsigned sets = cache.numSets();
    for (unsigned i = 0; i < 5; ++i)
        cache.access(0x1000 + i * sets * 128, false, false, i);
    // The first line was LRU and must be gone.
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_TRUE(cache.contains(0x1000 + 4 * sets * 128));
    EXPECT_EQ(cache.stats().counter("evictions").value(), 1u);
}

TEST(CacheTest, DirtyVictimReportsWriteback)
{
    Cache cache("t", smallCache());
    unsigned sets = cache.numSets();
    // Dirty register line.
    cache.access(0x1000, true, true, 0);
    // Evict it with 4 more lines in the same set.
    CacheResult last;
    for (unsigned i = 1; i <= 4; ++i)
        last = cache.access(0x1000 + i * sets * 128, false, false, i);
    EXPECT_TRUE(last.writeback);
    EXPECT_EQ(last.writebackAddr, 0x1000u & ~127u);
}

TEST(CacheTest, WriteNoAllocatePassesThrough)
{
    Cache cache("t", smallCache());
    CacheResult r = cache.access(0x2000, true, false, 0);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(cache.contains(0x2000));
}

TEST(CacheTest, RegisterWriteAllocatesWithoutMshr)
{
    CacheConfig cfg = smallCache();
    cfg.mshrs = 1;
    Cache cache("t", cfg);
    // Exhaust the single MSHR with an outstanding read miss.
    cache.access(0x3000, false, false, 0);
    cache.fillComplete(0x3000, 1000);
    // A register write-allocate miss must still succeed.
    CacheResult w = cache.access(0x4000, true, true, 1);
    EXPECT_FALSE(w.rejected);
    EXPECT_TRUE(cache.contains(0x4000));
    // A read miss, however, is rejected while the MSHR is busy.
    CacheResult r = cache.access(0x5000, false, false, 2);
    EXPECT_TRUE(r.rejected);
}

TEST(CacheTest, MshrMergeOnOutstandingFill)
{
    Cache cache("t", smallCache());
    cache.access(0x6000, false, false, 0);
    cache.fillComplete(0x6000, 500);
    CacheResult merged = cache.access(0x6000, false, false, 10);
    EXPECT_TRUE(merged.hit);
    EXPECT_TRUE(merged.mshrMerged);
    EXPECT_EQ(cache.outstandingReady(0x6000), 500u);
    // After the fill lands, plain hits.
    CacheResult later = cache.access(0x6000, false, false, 600);
    EXPECT_TRUE(later.hit);
    EXPECT_FALSE(later.mshrMerged);
}

TEST(CacheTest, InvalidateDropsLine)
{
    Cache cache("t", smallCache());
    cache.access(0x7000, false, false, 0);
    EXPECT_TRUE(cache.invalidate(0x7000));
    EXPECT_FALSE(cache.contains(0x7000));
    EXPECT_FALSE(cache.invalidate(0x7000));
}

TEST(DramTest, LatencyAndBandwidth)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.cyclesPerLine = 4.0;
    cfg.accessLatency = 100;
    cfg.bandwidthShare = 1.0;
    DramModel dram(cfg);
    Cycle first = dram.access(0, 0);
    EXPECT_EQ(first, 100u);
    // Back-to-back transfers on one channel serialise.
    Cycle second = dram.access(128, 0);
    EXPECT_EQ(second, 104u);
    Cycle third = dram.access(256, 0);
    EXPECT_EQ(third, 108u);
}

TEST(DramTest, ChannelInterleavingParallelises)
{
    DramConfig cfg;
    cfg.channels = 4;
    cfg.cyclesPerLine = 4.0;
    cfg.accessLatency = 100;
    cfg.bandwidthShare = 1.0;
    DramModel dram(cfg);
    // Four consecutive lines hit four different channels.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(dram.access(i * 128, 0), 100u);
}

TEST(DramTest, BandwidthShareSlowsChannel)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.cyclesPerLine = 2.0;
    cfg.accessLatency = 0;
    cfg.bandwidthShare = 0.25;
    DramModel dram(cfg);
    dram.access(0, 0);
    // Effective cost per line is 2 / 0.25 = 8 cycles.
    EXPECT_EQ(dram.access(128, 0), 8u);
}

TEST(MemorySystemTest, L1PortSerialises)
{
    MemorySystem mem;
    EXPECT_TRUE(mem.l1PortFree(0));
    mem.access(0x100, false, MemSpace::Register, 0);
    EXPECT_FALSE(mem.l1PortFree(0));
    EXPECT_TRUE(mem.l1PortFree(1));
    MemAccessResult rejected =
        mem.access(0x200, false, MemSpace::Register, 0);
    EXPECT_FALSE(rejected.accepted);
}

TEST(MemorySystemTest, DataBypassSkipsL1)
{
    MemorySystem mem;
    mem.access(0x100, false, MemSpace::Data, 0);
    EXPECT_FALSE(mem.l1().contains(0x100));
    // The L2 saw it.
    EXPECT_GT(mem.l2().stats().counter("misses").value(), 0u);
}

TEST(MemorySystemTest, RegisterLinesCacheInL1)
{
    MemorySystem mem;
    MemAccessResult miss = mem.access(0x100, false, MemSpace::Register, 0);
    EXPECT_TRUE(miss.accepted);
    EXPECT_NE(miss.source, MemSource::L1);
    // Wait out the fill, then hit.
    Cycle later = miss.readyCycle + 1;
    MemAccessResult hit =
        mem.access(0x100, false, MemSpace::Register, later);
    EXPECT_EQ(hit.source, MemSource::L1);
    EXPECT_EQ(hit.readyCycle, later + mem.config().l1Latency);
}

TEST(MemorySystemTest, RegisterWriteAllocatesWithoutFetch)
{
    MemorySystem mem;
    std::uint64_t dram_before =
        mem.dram().stats().counter("accesses").value();
    MemAccessResult w = mem.access(0x300, true, MemSpace::Register, 0);
    EXPECT_TRUE(w.accepted);
    EXPECT_EQ(w.source, MemSource::L1);
    EXPECT_EQ(mem.dram().stats().counter("accesses").value(),
              dram_before);
    EXPECT_TRUE(mem.l1().contains(0x300));
}

TEST(MemorySystemTest, InvalidateRegisterLineUsesPort)
{
    MemorySystem mem;
    mem.access(0x400, true, MemSpace::Register, 0);
    EXPECT_TRUE(mem.invalidateRegisterLine(0x400, 5));
    EXPECT_FALSE(mem.l1().contains(0x400));
    // Port now busy at cycle 5.
    EXPECT_FALSE(mem.invalidateRegisterLine(0x500, 5));
}

TEST(MemorySystemTest, FunctionalWordsRoundTrip)
{
    MemorySystem mem;
    mem.writeWord(0x1234, 42);
    EXPECT_EQ(mem.readWord(0x1234), 42u);
    // Untouched addresses come from the generator, deterministically.
    EXPECT_EQ(mem.readWord(0x9999), mem.readWord(0x9999));
}

TEST(MemorySystemTest, CustomValueGenerator)
{
    MemorySystem mem;
    mem.setValueGenerator([](Addr a) {
        return static_cast<std::uint32_t>(a / 4);
    });
    EXPECT_EQ(mem.readWord(40), 10u);
    // Writes still win over the generator.
    mem.writeWord(40, 7);
    EXPECT_EQ(mem.readWord(40), 7u);
}

TEST(MemorySystemTest, L2HitFasterThanDram)
{
    MemorySystem mem;
    MemAccessResult cold = mem.access(0x800, false, MemSpace::Data, 0);
    EXPECT_EQ(cold.source, MemSource::Dram);
    Cycle later = cold.readyCycle + 10;
    MemAccessResult warm =
        mem.access(0x800, false, MemSpace::Data, later);
    EXPECT_EQ(warm.source, MemSource::L2);
    EXPECT_LT(warm.readyCycle - later, cold.readyCycle);
}

} // namespace
} // namespace regless

namespace regless
{
namespace
{

// Non-bypass L1 data mode (the conventional GPU configuration, off by
// default per Table 1).

TEST(MemorySystemTest, NonBypassDataCachesInL1)
{
    MemConfig cfg;
    cfg.bypassL1Data = false;
    MemorySystem mem(cfg);
    MemAccessResult cold = mem.access(0x900, false, MemSpace::Data, 0);
    EXPECT_TRUE(cold.accepted);
    EXPECT_NE(cold.source, MemSource::L1);
    Cycle later = cold.readyCycle + 1;
    MemAccessResult warm =
        mem.access(0x900, false, MemSpace::Data, later);
    EXPECT_EQ(warm.source, MemSource::L1);
}

TEST(MemorySystemTest, NonBypassWritesAreWriteThrough)
{
    MemConfig cfg;
    cfg.bypassL1Data = false;
    MemorySystem mem(cfg);
    std::uint64_t l2_before =
        mem.l2().stats().counter("hits").value() +
        mem.l2().stats().counter("misses").value();
    mem.access(0xa00, true, MemSpace::Data, 0);
    std::uint64_t l2_after =
        mem.l2().stats().counter("hits").value() +
        mem.l2().stats().counter("misses").value();
    EXPECT_GT(l2_after, l2_before); // the write propagated downstream
    EXPECT_FALSE(mem.l1().contains(0xa00)); // write-no-allocate
}

TEST(MemorySystemTest, SharedDramContention)
{
    MemConfig cfg;
    cfg.dram.bandwidthShare = 1.0;
    cfg.dram.channels = 1;
    cfg.dram.cyclesPerLine = 8.0;
    auto dram = std::make_shared<DramModel>(cfg.dram);
    MemorySystem a(cfg, dram);
    MemorySystem b(cfg, dram);
    // Interleaved misses from two SMs queue on the shared channel.
    MemAccessResult ra = a.access(0x0, false, MemSpace::Data, 0);
    MemAccessResult rb = b.access(0x0, false, MemSpace::Data, 0);
    EXPECT_GT(rb.readyCycle, ra.readyCycle);
    EXPECT_EQ(dram->stats().counter("accesses").value(), 2u);
}

} // namespace
} // namespace regless
