/**
 * @file
 * RegLess hardware tests: OSU line management, compressor pattern
 * matching and caching, capacity-manager state machine, and full SM
 * runs where RegLess must produce exactly the same memory contents as
 * the baseline register file.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

#include "arch/sm.hh"
#include "compiler/compiler.hh"
#include "mem/memory_system.hh"
#include "regfile/baseline_rf.hh"
#include "regless/compressor.hh"
#include "regless/operand_staging_unit.hh"
#include "regless/regless_provider.hh"
#include "workloads/kernel_builder.hh"

namespace regless
{
namespace
{

using arch::Sm;
using arch::SmConfig;
using staging::Compressor;
using staging::CompressorConfig;
using staging::OperandStagingUnit;
using staging::ReglessConfig;
using staging::ReglessProvider;
using workloads::KernelBuilder;
using workloads::Label;

ir::LaneValues
lanes(std::uint32_t base, std::uint32_t stride)
{
    ir::LaneValues v{};
    for (unsigned i = 0; i < warpSize; ++i)
        v[i] = base + i * stride;
    return v;
}

TEST(OsuTest, BankMappingRotatesByWarp)
{
    EXPECT_EQ(OperandStagingUnit::bankOf(0, 0), 0u);
    EXPECT_EQ(OperandStagingUnit::bankOf(0, 5), 5u);
    EXPECT_EQ(OperandStagingUnit::bankOf(3, 5), 0u);
    EXPECT_EQ(OperandStagingUnit::bankOf(9, 7), 0u);
}

TEST(OsuTest, AllocateErasesFreesLines)
{
    OperandStagingUnit osu("t", 64, staging::VictimOrder::FreeCleanDirty);
    EXPECT_EQ(osu.linesPerBank(), 8u);
    auto rec = osu.allocate(0, 0, false);
    EXPECT_FALSE(rec.needed);
    EXPECT_TRUE(osu.present(0, 0));
    EXPECT_FALSE(osu.presentEvictable(0, 0));
    EXPECT_EQ(osu.bankCounts(0).owned, 1u);
    EXPECT_EQ(osu.bankCounts(0).free, 7u);
    osu.erase(0, 0);
    EXPECT_FALSE(osu.present(0, 0));
    EXPECT_EQ(osu.bankCounts(0).free, 8u);
    EXPECT_EQ(osu.occupiedLines(), 0u);
}

TEST(OsuTest, EvictableAndClaim)
{
    OperandStagingUnit osu("t", 64, staging::VictimOrder::FreeCleanDirty);
    osu.allocate(0, 0, false);
    osu.markEvictable(0, 0);
    EXPECT_TRUE(osu.presentEvictable(0, 0));
    EXPECT_EQ(osu.bankCounts(0).clean, 1u);
    osu.claim(0, 0);
    EXPECT_EQ(osu.bankCounts(0).owned, 1u);
    EXPECT_EQ(osu.bankCounts(0).clean, 0u);
}

TEST(OsuTest, DirtyTrackingFollowsWrites)
{
    OperandStagingUnit osu("t", 64, staging::VictimOrder::FreeCleanDirty);
    osu.allocate(0, 0, false);
    EXPECT_FALSE(osu.isDirty(0, 0));
    osu.recordWrite(0, 0);
    EXPECT_TRUE(osu.isDirty(0, 0));
    osu.markEvictable(0, 0);
    EXPECT_EQ(osu.bankCounts(0).dirty, 1u);
}

TEST(OsuTest, ReclaimPrefersCleanOverDirty)
{
    // 8 lines per bank; fill bank 0 with 4 dirty + 4 clean evictable,
    // then allocate: the clean LRU line must be the victim.
    OperandStagingUnit osu("t", 64, staging::VictimOrder::FreeCleanDirty);
    for (unsigned i = 0; i < 8; ++i) {
        RegId reg = static_cast<RegId>(i * 8); // all map to bank 0
        osu.allocate(0, reg, /*dirty=*/i < 4);
        osu.markEvictable(0, reg);
    }
    EXPECT_EQ(osu.bankCounts(0).free, 0u);
    auto rec = osu.allocate(0, 200, false); // reg 200 % 8 == 0
    EXPECT_TRUE(rec.needed);
    EXPECT_FALSE(rec.writeback); // clean victim, no write-back
    // The victim was the LRU clean entry (reg 32).
    EXPECT_EQ(rec.victimReg, 32);
}

TEST(OsuTest, ReclaimFallsBackToDirty)
{
    OperandStagingUnit osu("t", 64, staging::VictimOrder::FreeCleanDirty);
    for (unsigned i = 0; i < 8; ++i) {
        RegId reg = static_cast<RegId>(i * 8);
        osu.allocate(0, reg, /*dirty=*/true);
        osu.markEvictable(0, reg);
    }
    auto rec = osu.allocate(0, 200, false);
    EXPECT_TRUE(rec.needed);
    EXPECT_TRUE(rec.writeback);
    EXPECT_EQ(rec.victimReg, 0); // LRU dirty
}

TEST(OsuTest, DirtyFirstAblationOrder)
{
    OperandStagingUnit osu("t", 64, staging::VictimOrder::DirtyFirst);
    for (unsigned i = 0; i < 8; ++i) {
        RegId reg = static_cast<RegId>(i * 8);
        osu.allocate(0, reg, /*dirty=*/i < 4);
        osu.markEvictable(0, reg);
    }
    auto rec = osu.allocate(0, 200, false);
    EXPECT_TRUE(rec.needed);
    EXPECT_TRUE(rec.writeback); // dirty victim preferred
}

TEST(OsuTest, DropWarpReleasesEverything)
{
    OperandStagingUnit osu("t", 64, staging::VictimOrder::FreeCleanDirty);
    osu.allocate(3, 1, true);
    osu.allocate(3, 2, false);
    osu.allocate(4, 1, false);
    osu.dropWarp(3);
    EXPECT_FALSE(osu.present(3, 1));
    EXPECT_FALSE(osu.present(3, 2));
    EXPECT_TRUE(osu.present(4, 1));
    EXPECT_EQ(osu.occupiedLines(), 1u);
}

TEST(OsuTest, InvariantsHoldUnderRandomInterleavings)
{
    // Structural invariants after any interleaving of the public
    // mutators: in every bank owned + clean + dirty + free equals
    // linesPerBank(), the cached per-bank counts match a recount of
    // the actual entries, and occupiedLines() matches their sum.
    OperandStagingUnit osu("t", 64, staging::VictimOrder::FreeCleanDirty);
    auto check = [&] {
        unsigned occupied = 0;
        for (unsigned b = 0; b < staging::osuBanks; ++b) {
            auto counts = osu.bankCounts(b);
            ASSERT_EQ(counts.owned + counts.clean + counts.dirty +
                          counts.free,
                      osu.linesPerBank());
            OperandStagingUnit::BankCounts recount;
            for (const auto &entry : osu.bankEntries(b)) {
                switch (entry.state) {
                  case staging::LineState::Owned:
                    ++recount.owned;
                    break;
                  case staging::LineState::EvictClean:
                    ++recount.clean;
                    break;
                  case staging::LineState::EvictDirty:
                    ++recount.dirty;
                    break;
                }
            }
            ASSERT_EQ(recount.owned, counts.owned);
            ASSERT_EQ(recount.clean, counts.clean);
            ASSERT_EQ(recount.dirty, counts.dirty);
            occupied += counts.owned + counts.clean + counts.dirty;
        }
        ASSERT_EQ(occupied, osu.occupiedLines());
    };

    std::mt19937 rng(97);
    std::vector<std::pair<WarpId, RegId>> resident;
    auto drop = [&](WarpId warp, RegId reg) {
        for (auto it = resident.begin(); it != resident.end(); ++it) {
            if (it->first == warp && it->second == reg) {
                resident.erase(it);
                return;
            }
        }
    };
    for (unsigned step = 0; step < 5000; ++step) {
        unsigned op = rng() % 8;
        if (op <= 2 || resident.empty()) { // bias toward filling up
            WarpId w = rng() % 8;
            RegId r = static_cast<RegId>(rng() % 64);
            auto counts =
                osu.bankCounts(OperandStagingUnit::bankOf(w, r));
            // A bank full of owned lines is the capacity manager's
            // over-commit panic, not an OSU state; skip.
            if (osu.present(w, r) ||
                counts.owned == osu.linesPerBank())
                continue;
            auto rec = osu.allocate(w, r, (rng() & 1) != 0);
            if (rec.needed)
                drop(rec.victimWarp, rec.victimReg);
            resident.emplace_back(w, r);
        } else if (op == 3) {
            auto [w, r] = resident[rng() % resident.size()];
            osu.erase(w, r);
            drop(w, r);
        } else if (op == 4) {
            auto [w, r] = resident[rng() % resident.size()];
            osu.markEvictable(w, r);
        } else if (op == 5) {
            auto [w, r] = resident[rng() % resident.size()];
            osu.claim(w, r);
        } else if (op == 6) {
            auto [w, r] = resident[rng() % resident.size()];
            osu.recordWrite(w, r);
        } else {
            WarpId w = rng() % 8;
            osu.dropWarp(w);
            resident.erase(
                std::remove_if(resident.begin(), resident.end(),
                               [w](const auto &e) {
                                   return e.first == w;
                               }),
                resident.end());
        }
        check();
    }
}

TEST(CompressorTest, PatternMatching)
{
    EXPECT_EQ(Compressor::matchPattern(lanes(42, 0)),
              staging::Pattern::Constant);
    EXPECT_EQ(Compressor::matchPattern(lanes(100, 1)),
              staging::Pattern::Stride1);
    EXPECT_EQ(Compressor::matchPattern(lanes(0, 4)),
              staging::Pattern::Stride4);

    ir::LaneValues half{};
    for (unsigned i = 0; i < 16; ++i)
        half[i] = 10 + i;
    for (unsigned i = 16; i < 32; ++i)
        half[i] = 900 + (i - 16);
    EXPECT_EQ(Compressor::matchPattern(half),
              staging::Pattern::HalfStride1);

    ir::LaneValues half4{};
    for (unsigned i = 0; i < 16; ++i)
        half4[i] = 4 * i;
    for (unsigned i = 16; i < 32; ++i)
        half4[i] = 7777 + 4 * (i - 16);
    EXPECT_EQ(Compressor::matchPattern(half4),
              staging::Pattern::HalfStride4);

    ir::LaneValues random{};
    for (unsigned i = 0; i < 32; ++i)
        random[i] = i * i * 2654435761u;
    EXPECT_EQ(Compressor::matchPattern(random), staging::Pattern::None);
}

TEST(CompressorTest, EvictAndPreloadThroughCache)
{
    mem::MemorySystem mem;
    CompressorConfig cfg;
    Compressor comp("c", cfg, mem, 0x6000'0000, 64);

    EXPECT_FALSE(comp.isCompressed(1, 2));
    EXPECT_TRUE(comp.compressEvict(1, 2, lanes(5, 0), 0).compressed);
    EXPECT_TRUE(comp.isCompressed(1, 2));

    auto res = comp.preload(1, 2, 10);
    EXPECT_TRUE(res.accepted);
    EXPECT_TRUE(res.wasCompressed);
    EXPECT_TRUE(res.cacheHit);
    EXPECT_EQ(res.ready, 10 + cfg.checkLatency + cfg.hitLatency);
}

TEST(CompressorTest, MissPathChargesCheckLatency)
{
    // Regression: the cache-miss path used to omit checkLatency, so a
    // miss could come back *cheaper* than a hit. The bit-vector check
    // happens on every preload; raising checkLatency by d must shift
    // every path — including the miss — by exactly d.
    auto missReady = [](unsigned check_latency) {
        mem::MemorySystem mem;
        CompressorConfig cfg;
        cfg.cacheLines = 1;
        cfg.checkLatency = check_latency;
        Compressor comp("c", cfg, mem, 0x6000'0000, 64);
        // Registers >= 32 apart land in distinct compressed lines, so
        // the second evict displaces the first from the 1-line cache.
        comp.compressEvict(0, 0, lanes(1, 0), 0);
        comp.compressEvict(0, 64, lanes(2, 0), 0);
        auto res = comp.preload(0, 0, 100);
        EXPECT_TRUE(res.accepted);
        EXPECT_TRUE(res.wasCompressed);
        EXPECT_FALSE(res.cacheHit);
        return res.ready;
    };
    const unsigned delta = 7;
    EXPECT_EQ(missReady(2 + delta), missReady(2) + delta);
}

TEST(CompressorTest, PreloadLatencyOrdering)
{
    // With one cache line, stage a hit (resident line), a miss
    // (displaced line), and a not-compressed register, all probed at
    // the same cycle: not-compressed <= hit <= miss must hold.
    mem::MemorySystem mem;
    CompressorConfig cfg;
    cfg.cacheLines = 1;
    Compressor comp("c", cfg, mem, 0x6000'0000, 64);
    comp.compressEvict(0, 0, lanes(1, 0), 0);
    comp.compressEvict(0, 64, lanes(2, 0), 0);

    auto not_compressed = comp.preload(0, 128, 100);
    auto hit = comp.preload(0, 64, 100);
    auto miss = comp.preload(0, 0, 100);
    ASSERT_TRUE(not_compressed.accepted);
    ASSERT_FALSE(not_compressed.wasCompressed);
    ASSERT_TRUE(hit.accepted);
    ASSERT_TRUE(hit.cacheHit);
    ASSERT_TRUE(miss.accepted);
    ASSERT_FALSE(miss.cacheHit);
    EXPECT_EQ(not_compressed.ready, 100 + cfg.checkLatency);
    EXPECT_LE(not_compressed.ready, hit.ready);
    EXPECT_LE(hit.ready, miss.ready);
}

TEST(CompressorTest, IncompressibleValueRejected)
{
    mem::MemorySystem mem;
    Compressor comp("c", CompressorConfig{}, mem, 0x6000'0000, 64);
    ir::LaneValues random{};
    for (unsigned i = 0; i < 32; ++i)
        random[i] = i * 2654435761u + (i % 3);
    EXPECT_FALSE(comp.compressEvict(0, 0, random, 0).compressed);
    EXPECT_FALSE(comp.isCompressed(0, 0));
    auto res = comp.preload(0, 0, 5);
    EXPECT_FALSE(res.wasCompressed);
}

TEST(CompressorTest, InvalidateClearsBitVector)
{
    mem::MemorySystem mem;
    Compressor comp("c", CompressorConfig{}, mem, 0x6000'0000, 64);
    comp.compressEvict(0, 3, lanes(9, 1), 0);
    EXPECT_TRUE(comp.isCompressed(0, 3));
    comp.invalidate(0, 3);
    EXPECT_FALSE(comp.isCompressed(0, 3));
}

TEST(CompressorTest, CacheOverflowFlushesDirtyLines)
{
    mem::MemorySystem mem;
    CompressorConfig cfg;
    cfg.cacheLines = 2;
    Compressor comp("c", cfg, mem, 0x6000'0000, 64);
    // Registers far apart land in distinct compressed lines.
    for (RegId r = 0; r < 6; ++r)
        comp.compressEvict(0, static_cast<RegId>(r * 32), lanes(r, 0), 0);
    // Drain the flush queue.
    for (Cycle t = 100; t < 200; ++t)
        comp.tick(t);
    EXPECT_GT(comp.stats().counter("line_flushes").value(), 0u);
}

/** Harness running one kernel under RegLess. */
struct ReglessRun
{
    explicit ReglessRun(ir::Kernel k, ReglessConfig rcfg = ReglessConfig(),
                        SmConfig scfg = SmConfig(),
                        compiler::CompilerConfig ccfg =
                            compiler::CompilerConfig())
        : ck(compiler::compile(k, ccfg)),
          mem(),
          provider(ck, mem, rcfg, scfg.numWarps),
          sm(ck, mem, provider, scfg)
    {
        provider.setWarpSource(
            [this](WarpId w) -> const arch::Warp & {
                return sm.warp(w);
            });
    }
    compiler::CompiledKernel ck;
    mem::MemorySystem mem;
    ReglessProvider provider;
    Sm sm;
};

/** Same kernel under the baseline RF, for output comparison. */
struct BaselineRun
{
    explicit BaselineRun(ir::Kernel k)
        : ck(compiler::compile(k)), mem(), rf(), sm(ck, mem, rf, {})
    {
    }
    compiler::CompiledKernel ck;
    mem::MemorySystem mem;
    regfile::BaselineRf rf;
    Sm sm;
};

ir::Kernel
computeKernel()
{
    KernelBuilder b("compute");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId x = b.iaddi(t, 3);
    RegId y = b.imul(x, x);
    RegId z = b.iadd(y, t);
    b.st(z, addr);
    return b.build();
}

ir::Kernel
loadChainKernel()
{
    KernelBuilder b("chain");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    b.st(b.imuli(t, 5), addr);
    b.bar();
    RegId v = b.ld(addr);
    RegId w = b.iaddi(v, 11);
    b.st(w, addr, 65536);
    return b.build();
}

ir::Kernel
divergedLoopKernel()
{
    KernelBuilder b("divloop");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId i = b.reg();
    RegId acc = b.reg();
    b.moviTo(i, 0);
    b.movTo(acc, t);
    // Trip count diverges with tid: (t % 4) + 2 iterations.
    RegId trips = b.iaddi(b.band(t, b.movi(3)), 2);
    Label head = b.newLabel();
    b.bind(head);
    b.iaddTo(acc, acc, i);
    b.iaddiTo(i, i, 1);
    RegId p = b.setLt(i, trips);
    b.braIf(p, head);
    b.st(acc, addr);
    return b.build();
}

TEST(ReglessEndToEnd, ComputeKernelMatchesBaseline)
{
    ReglessRun rl(computeKernel());
    BaselineRun base(computeKernel());
    rl.sm.run();
    base.sm.run();
    SmConfig cfg;
    for (unsigned tid = 0; tid < 2048; tid += 37) {
        Addr a = cfg.dataBase + 4 * tid;
        EXPECT_EQ(rl.mem.readWord(a), base.mem.readWord(a))
            << "tid " << tid;
    }
}

TEST(ReglessEndToEnd, LoadChainMatchesBaseline)
{
    ReglessRun rl(loadChainKernel());
    BaselineRun base(loadChainKernel());
    rl.sm.run();
    base.sm.run();
    SmConfig cfg;
    for (unsigned tid = 0; tid < 2048; tid += 53) {
        Addr a = cfg.dataBase + 4 * tid + 65536;
        EXPECT_EQ(rl.mem.readWord(a), 5 * tid + 11) << "tid " << tid;
        EXPECT_EQ(base.mem.readWord(a), 5 * tid + 11) << "tid " << tid;
    }
}

TEST(ReglessEndToEnd, DivergedLoopMatchesBaseline)
{
    ReglessRun rl(divergedLoopKernel());
    BaselineRun base(divergedLoopKernel());
    rl.sm.run();
    base.sm.run();
    SmConfig cfg;
    for (unsigned tid = 0; tid < 2048; tid += 41) {
        Addr a = cfg.dataBase + 4 * tid;
        unsigned trips = (tid & 3) + 2;
        unsigned expect = tid + trips * (trips - 1) / 2;
        EXPECT_EQ(rl.mem.readWord(a), expect) << "tid " << tid;
        EXPECT_EQ(base.mem.readWord(a), expect) << "tid " << tid;
    }
}

TEST(ReglessEndToEnd, PreloadsAreCounted)
{
    ReglessRun rl(loadChainKernel());
    rl.sm.run();
    std::uint64_t from_osu = rl.provider.preloadsFrom("preload_src_osu");
    std::uint64_t from_l1 = rl.provider.preloadsFrom("preload_src_l1");
    std::uint64_t from_comp =
        rl.provider.preloadsFrom("preload_src_compressor");
    std::uint64_t from_far =
        rl.provider.preloadsFrom("preload_src_l2dram");
    // The chain kernel crosses region boundaries (load/use split), so
    // preloads must happen, and most should hit in the OSU.
    EXPECT_GT(from_osu + from_l1 + from_comp + from_far, 0u);
    EXPECT_GT(from_osu, from_l1 + from_far);
}

TEST(ReglessEndToEnd, ActivationsAndRegionStats)
{
    ReglessRun rl(computeKernel());
    rl.sm.run();
    EXPECT_GT(rl.provider.preloadsFrom("activations"), 0u);
    EXPECT_GT(rl.provider.meanRegionInsns(), 0.0);
    EXPECT_GT(rl.provider.meanRegionLive(), 0.0);
    EXPECT_GT(rl.provider.osuAccesses(), 0u);
}

TEST(ReglessEndToEnd, TinyOsuStillCorrect)
{
    // 64 entries per SM = 2 lines per bank per shard: extreme pressure
    // forces constant eviction traffic but must stay correct.
    ReglessConfig rcfg;
    rcfg.osuEntriesPerSm = 64;
    compiler::CompilerConfig ccfg;
    ccfg.maxRegsPerRegion = 4;
    ccfg.maxRegsPerBank = 2;
    ReglessRun rl(computeKernel(), rcfg, SmConfig(), ccfg);
    BaselineRun base(computeKernel());
    rl.sm.run();
    base.sm.run();
    SmConfig cfg;
    for (unsigned tid = 0; tid < 2048; tid += 97) {
        Addr a = cfg.dataBase + 4 * tid;
        EXPECT_EQ(rl.mem.readWord(a), base.mem.readWord(a));
    }
}

TEST(ReglessEndToEnd, NoCompressorStillCorrect)
{
    ReglessConfig rcfg;
    rcfg.compressorEnabled = false;
    ReglessRun rl(loadChainKernel(), rcfg);
    rl.sm.run();
    SmConfig cfg;
    for (unsigned tid = 0; tid < 2048; tid += 101) {
        Addr a = cfg.dataBase + 4 * tid + 65536;
        EXPECT_EQ(rl.mem.readWord(a), 5 * tid + 11);
    }
}

TEST(ReglessEndToEnd, FifoActivationAblationCompletes)
{
    ReglessConfig rcfg;
    rcfg.fifoActivation = true;
    ReglessRun rl(divergedLoopKernel(), rcfg);
    rl.sm.run();
    EXPECT_TRUE(rl.sm.done());
}

} // namespace
} // namespace regless
