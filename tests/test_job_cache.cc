/**
 * @file
 * The fleet-safe cache suite (ctest label "cache", DESIGN.md §15):
 * sharded layout, crash/corruption tolerance, the CacheFaultPlan
 * chaos oracle (under every injected environmental fault the engine
 * never crashes, never serves a corrupt entry, and produces results
 * byte-identical to a cache-disabled run), the degradation ladder,
 * gc/survey maintenance, the `--shard i/n` partition parity oracle,
 * and real multi-process stress over one shared directory.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#endif

#include "common/sim_error.hh"
#include "sim/experiment_engine.hh"
#include "sim/job_cache.hh"
#include "sim/stats_io.hh"
#include "workloads/kernel_builder.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

namespace fs = std::filesystem;

/** A few-instruction kernel so cache tests simulate in microseconds. */
ir::Kernel
tinyKernel()
{
    workloads::KernelBuilder b("tiny");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId v = b.ld(addr);
    b.st(b.iadd(v, t), addr, 1 << 22);
    return b.build();
}

sim::SimJob
tinyJob(sim::ProviderKind kind)
{
    return {"tiny", sim::GpuConfig::forProvider(kind), 0, tinyKernel};
}

/** The tiny grid the chaos and fleet tests run: enough jobs to hit
 * several shards and exercise more than one store. */
std::vector<sim::SimJob>
tinyGrid()
{
    std::vector<sim::SimJob> jobs;
    for (sim::ProviderKind kind :
         {sim::ProviderKind::Baseline, sim::ProviderKind::Rfh,
          sim::ProviderKind::Rfv, sim::ProviderKind::Regless,
          sim::ProviderKind::CompilerRfCache,
          sim::ProviderKind::RegDem})
        jobs.push_back(tinyJob(kind));
    return jobs;
}

fs::path
freshDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) /
                   ("regless-job-cache-" + name);
    fs::remove_all(dir);
    return dir;
}

/** All-stats JSON of running @a jobs under @a options — the byte
 * oracle every chaos variant is compared against. */
std::string
runGridJson(const std::vector<sim::SimJob> &jobs,
            const sim::ExperimentEngine::Options &options)
{
    sim::ExperimentEngine engine(options);
    for (const sim::SimJob &job : jobs)
        engine.submit(job);
    std::ostringstream out;
    sim::writeJson(out, engine.allStats());
    return out.str();
}

/** Deterministic record for multi-process stress: every writer of
 * key @a index produces these exact bytes. */
sim::JobRecord
syntheticRecord(unsigned index)
{
    sim::JobRecord record;
    record.schema = sim::kJobCacheSchemaVersion;
    record.status = sim::JobStatus::Ok;
    record.stats.kernel = "stress_" + std::to_string(index);
    record.stats.cycles = 1000 + index;
    record.stats.insns = 17 * index;
    record.attempts = 1;
    return record;
}

sim::JobCache::Key
syntheticKey(unsigned index)
{
    // Spread the keys over shards like real fingerprints do.
    const std::uint64_t fp = 0x9e3779b97f4a7c15ULL * (index + 1);
    std::ostringstream name;
    name << "stress_" << index << "-baseline-0sm-" << std::hex << fp
         << ".json";
    return {name.str(), fp};
}

// ---------------------------------------------------------------------
// Sharded layout.
// ---------------------------------------------------------------------

TEST(ShardLayout, EntriesLandInTheirFingerprintShard)
{
    const fs::path dir = freshDir("layout");
    sim::ExperimentEngine::Options options;
    options.cacheDir = dir.string();
    sim::ExperimentEngine engine(options);
    for (const sim::SimJob &job : tinyGrid())
        engine.submit(job);
    engine.flush();

    unsigned checked = 0;
    for (const sim::SimJob &job : tinyGrid()) {
        const fs::path rel = sim::ExperimentEngine::cacheEntryPath(job);
        ASSERT_TRUE(fs::exists(dir / rel)) << rel;
        // The shard subdirectory is the fingerprint's low byte, and
        // the fingerprint is recoverable from the leaf name alone
        // (what verify/gc rely on to spot misplaced entries).
        std::uint64_t fp = 0;
        ASSERT_TRUE(sim::JobCache::parseEntryName(
            rel.filename().string(), fp));
        EXPECT_EQ(sim::JobCache::shardName(fp),
                  rel.parent_path().string());
        ++checked;
    }
    EXPECT_EQ(checked, tinyGrid().size());
}

TEST(ShardLayout, ParseEntryNameRejectsNonEntries)
{
    std::uint64_t fp = 0;
    EXPECT_TRUE(sim::JobCache::parseEntryName(
        "bfs-regless-0sm-d6ef7ffcf3cf1624.json", fp));
    EXPECT_EQ(fp, 0xd6ef7ffcf3cf1624ULL);
    EXPECT_FALSE(sim::JobCache::parseEntryName(
        "bfs-regless-0sm-d6ef.json.tmp.123.0", fp));
    EXPECT_FALSE(sim::JobCache::parseEntryName("README.md", fp));
    EXPECT_FALSE(sim::JobCache::parseEntryName("x-notahex.json", fp));
    EXPECT_FALSE(sim::JobCache::parseEntryName(".lock", fp));
}

// ---------------------------------------------------------------------
// Load tolerance and the schema gate.
// ---------------------------------------------------------------------

TEST(JobCacheLoad, CorruptAndTornEntriesAreCountedMisses)
{
    const fs::path dir = freshDir("tolerance");
    sim::JobCache::Options options;
    options.dir = dir.string();
    sim::JobCache cache(options);
    const sim::JobCache::Key key = syntheticKey(1);
    ASSERT_TRUE(cache.store(key, syntheticRecord(1)));

    sim::JobRecord out;
    EXPECT_TRUE(cache.load(key, out));
    EXPECT_EQ(out.stats.cycles, 1001u);

    // Truncate the entry to half: a miss, counted as corrupt.
    std::string text;
    {
        std::ifstream in(cache.entryPath(key), std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }
    std::ofstream(cache.entryPath(key),
                  std::ios::binary | std::ios::trunc)
        << text.substr(0, text.size() / 2);
    EXPECT_FALSE(cache.load(key, out));
    EXPECT_EQ(cache.counters().corrupt, 1u);

    // Garbage is also just a corrupt miss, and a missing entry is a
    // plain miss.
    std::ofstream(cache.entryPath(key),
                  std::ios::binary | std::ios::trunc)
        << "{]not json";
    EXPECT_FALSE(cache.load(key, out));
    EXPECT_EQ(cache.counters().corrupt, 2u);
    EXPECT_FALSE(cache.load(syntheticKey(2), out));
    EXPECT_EQ(cache.counters().misses, 3u);
    EXPECT_EQ(cache.counters().hits, 1u);
}

TEST(JobCacheLoad, NewerSchemaEntriesAreRejectedNotHalfParsed)
{
    // Forward compatibility: an entry written by a *newer* build
    // parses fine (the flat schema ignores unknown keys) but must be
    // rejected by the schema gate — half-parsing it would silently
    // zero every field this build doesn't know it's missing.
    const fs::path dir = freshDir("newer-schema");
    sim::JobCache::Options options;
    options.dir = dir.string();
    sim::JobCache cache(options);
    const sim::JobCache::Key key = syntheticKey(3);
    ASSERT_TRUE(cache.store(key, syntheticRecord(3)));

    // Forge the future: bump the schema stamp and graft on a key no
    // current reader knows.
    std::string text;
    {
        std::ifstream in(cache.entryPath(key), std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }
    const std::string stamp =
        "\"record_schema\":" +
        std::to_string(sim::kJobCacheSchemaVersion);
    const std::size_t at = text.find(stamp);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, stamp.size(),
                 "\"record_schema\":" +
                     std::to_string(sim::kJobCacheSchemaVersion + 1) +
                     ",\"stat_from_the_future\":42");
    std::ofstream(cache.entryPath(key),
                  std::ios::binary | std::ios::trunc)
        << text;

    sim::JobRecord out;
    EXPECT_FALSE(cache.load(key, out));
    EXPECT_EQ(cache.counters().schemaRejects, 1u);
    EXPECT_EQ(cache.counters().corrupt, 0u);

    // Older entries are gated identically.
    const std::string future =
        "\"record_schema\":" +
        std::to_string(sim::kJobCacheSchemaVersion + 1);
    text.replace(text.find("\"record_schema\":"), future.size(),
                 "\"record_schema\":1");
    std::ofstream(cache.entryPath(key),
                  std::ios::binary | std::ios::trunc)
        << text;
    EXPECT_FALSE(cache.load(key, out));
    EXPECT_EQ(cache.counters().schemaRejects, 2u);
}

TEST(JobCacheLoad, EngineResimulatesPastAForeignSchemaEntry)
{
    const fs::path dir = freshDir("engine-schema");
    sim::ExperimentEngine::Options options;
    options.cacheDir = dir.string();
    const sim::SimJob job = tinyJob(sim::ProviderKind::Regless);
    sim::RunStats reference;
    {
        sim::ExperimentEngine engine(options);
        reference = engine.stats(engine.submit(job));
    }
    const fs::path path =
        dir / sim::ExperimentEngine::cacheEntryPath(job);
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }
    const std::string stamp =
        "\"record_schema\":" +
        std::to_string(sim::kJobCacheSchemaVersion);
    ASSERT_NE(text.find(stamp), std::string::npos);
    text.replace(text.find(stamp), stamp.size(),
                 "\"record_schema\":" +
                     std::to_string(sim::kJobCacheSchemaVersion + 9) +
                     ",\"unknown_future_key\":\"whatever\"");
    std::ofstream(path, std::ios::binary | std::ios::trunc) << text;

    sim::ExperimentEngine engine(options);
    const sim::RunStats &stats = engine.stats(engine.submit(job));
    EXPECT_EQ(engine.cacheHits(), 0u);
    EXPECT_EQ(engine.simulated(), 1u);
    EXPECT_EQ(engine.cache().counters().schemaRejects, 1u);
    EXPECT_TRUE(stats == reference);
    // And the entry healed back to the current schema.
    sim::ExperimentEngine warm(options);
    warm.submit(job);
    warm.flush();
    EXPECT_EQ(warm.cacheHits(), 1u);
}

// ---------------------------------------------------------------------
// Store paths: coalescing, cleanup, degradation.
// ---------------------------------------------------------------------

/** Count writer temp files anywhere under @a dir. */
unsigned
tempFilesUnder(const fs::path &dir)
{
    unsigned n = 0;
    if (!fs::exists(dir))
        return n;
    for (const auto &it : fs::recursive_directory_iterator(dir)) {
        if (it.is_regular_file() &&
            sim::JobCache::isTempName(it.path().filename().string()))
            ++n;
    }
    return n;
}

TEST(JobCacheStore, DuplicateWritesCoalesce)
{
    const fs::path dir = freshDir("coalesce");
    sim::JobCache::Options options;
    options.dir = dir.string();
    sim::JobCache a(options);
    sim::JobCache b(options);
    const sim::JobCache::Key key = syntheticKey(4);
    ASSERT_TRUE(a.store(key, syntheticRecord(4)));
    EXPECT_EQ(a.counters().stores, 1u);
    // The race loser (any process, any time) detects the published
    // entry under the shard lock and skips the redundant write.
    ASSERT_TRUE(b.store(key, syntheticRecord(4)));
    EXPECT_EQ(b.counters().stores, 0u);
    EXPECT_EQ(b.counters().coalesced, 1u);
}

TEST(JobCacheStore, RenameFailureCleansTheTempAndCounts)
{
    const fs::path dir = freshDir("rename-fail");
    sim::JobCache::Options options;
    options.dir = dir.string();
    options.faults.kind = sim::CacheFaultPlan::Kind::RenameFail;
    sim::JobCache cache(options);
    EXPECT_FALSE(cache.store(syntheticKey(5), syntheticRecord(5)));
    // The orphan temp the old engine-inline writer leaked is gone,
    // and the failure is counted (warned once, not per store).
    EXPECT_EQ(tempFilesUnder(dir), 0u);
    EXPECT_EQ(cache.counters().storeFailures, 1u);
    EXPECT_EQ(cache.counters().stores, 0u);
    EXPECT_EQ(cache.mode(), sim::CacheMode::ReadWrite);
}

TEST(JobCacheStore, RepeatedDiskFullDegradesToReadOnly)
{
    const fs::path dir = freshDir("enospc");
    sim::JobCache::Options options;
    options.dir = dir.string();
    options.faults.kind = sim::CacheFaultPlan::Kind::Enospc;
    options.faults.repeat = true;
    sim::JobCache cache(options);
    // Ladder: keep trying for maxStoreFailures consecutive failures,
    // then stop writing for the rest of the process — structured
    // degradation, not a warning storm and never a crash.
    for (unsigned i = 0; i < options.maxStoreFailures; ++i) {
        EXPECT_EQ(cache.mode(), sim::CacheMode::ReadWrite);
        EXPECT_FALSE(cache.store(syntheticKey(i), syntheticRecord(i)));
    }
    EXPECT_EQ(cache.mode(), sim::CacheMode::ReadOnly);
    EXPECT_NE(cache.modeReason().find("store failures"),
              std::string::npos);
    // Further stores are structural no-ops, not new failures.
    EXPECT_FALSE(cache.store(syntheticKey(9), syntheticRecord(9)));
    EXPECT_EQ(cache.counters().storeFailures,
              options.maxStoreFailures);
    EXPECT_EQ(tempFilesUnder(dir), 0u);
}

TEST(JobCacheStore, CrashAfterTmpOrphanIsSweptByTheJanitor)
{
    const fs::path dir = freshDir("crash-tmp");
    sim::JobCache::Options options;
    options.dir = dir.string();
    const sim::JobCache::Key key = syntheticKey(6);
    {
        sim::JobCache::Options crash = options;
        crash.faults.kind = sim::CacheFaultPlan::Kind::CrashAfterTmp;
        sim::JobCache cache(crash);
        EXPECT_FALSE(cache.store(key, syntheticRecord(6)));
    }
    // The "killed" writer left its temp behind and published nothing.
    EXPECT_EQ(tempFilesUnder(dir), 1u);
    sim::JobCache reader(options);
    sim::JobRecord out;
    EXPECT_FALSE(reader.load(key, out));

    // The next writer into that shard sweeps stale temps first.
    sim::JobCache::Options sweep = options;
    sweep.staleTmpAgeSec = 0.0;
    sim::JobCache janitor(sweep);
    ASSERT_TRUE(janitor.store(key, syntheticRecord(6)));
    EXPECT_EQ(janitor.counters().janitorRemoved, 1u);
    EXPECT_EQ(tempFilesUnder(dir), 0u);
    EXPECT_TRUE(janitor.load(key, out));
}

TEST(JobCacheStore, UnusableDirectoryDegradesInsteadOfCrashing)
{
    // Point the cache at a path whose parent is a regular file:
    // nothing can ever be created there, even running as root.
    const fs::path file = freshDir("not-a-dir");
    std::ofstream(file) << "in the way";
    sim::ExperimentEngine::Options options;
    options.cacheDir = (file / "cache").string();

    sim::ExperimentEngine engine(options);
    const sim::SimJob job = tinyJob(sim::ProviderKind::Baseline);
    const sim::RunStats &stats = engine.stats(engine.submit(job));
    EXPECT_EQ(engine.simulated(), 1u);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_EQ(engine.cache().mode(), sim::CacheMode::Disabled);
    EXPECT_FALSE(engine.cache().modeReason().empty());
}

// ---------------------------------------------------------------------
// The chaos oracle: every fault plan, byte-identical results.
// ---------------------------------------------------------------------

class CacheChaos
    : public ::testing::TestWithParam<sim::CacheFaultPlan::Kind>
{
};

TEST_P(CacheChaos, ResultsAreByteIdenticalToACacheDisabledRun)
{
    const std::vector<sim::SimJob> jobs = tinyGrid();
    const std::string reference =
        runGridJson(jobs, sim::ExperimentEngine::Options{});

    const fs::path dir =
        freshDir(std::string("chaos-") +
                 sim::cacheFaultKindName(GetParam()));
    sim::ExperimentEngine::Options faulted;
    faulted.cacheDir = dir.string();
    faulted.cacheFaults.kind = GetParam();
    faulted.cacheFaults.repeat = true;

    // Run 1: every store hits the injected fault. The engine must
    // neither crash nor lose a result.
    EXPECT_EQ(runGridJson(jobs, faulted), reference);

    // Run 2, same faulted cache: whatever run 1 left on disk (torn
    // entries, orphan temps, nothing) must never be *served* — a
    // corrupt entry is re-simulated, a valid one is a hit; results
    // stay byte-identical either way.
    EXPECT_EQ(runGridJson(jobs, faulted), reference);

    // Run 3, fault-free on the same directory: the cache heals; a
    // warm rerun serves only valid entries and matches the oracle.
    sim::ExperimentEngine::Options clean;
    clean.cacheDir = dir.string();
    EXPECT_EQ(runGridJson(jobs, clean), reference);
    sim::ExperimentEngine warm(clean);
    for (const sim::SimJob &job : jobs)
        warm.submit(job);
    warm.flush();
    EXPECT_EQ(warm.simulated(), 0u);
    EXPECT_EQ(warm.cacheHits(), jobs.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultKinds, CacheChaos,
    ::testing::Values(sim::CacheFaultPlan::Kind::TornWrite,
                      sim::CacheFaultPlan::Kind::RenameFail,
                      sim::CacheFaultPlan::Kind::Enospc,
                      sim::CacheFaultPlan::Kind::Clobber,
                      sim::CacheFaultPlan::Kind::CrashAfterTmp),
    [](const ::testing::TestParamInfo<sim::CacheFaultPlan::Kind> &i) {
        std::string name = sim::cacheFaultKindName(i.param);
        for (char &c : name)
            if (c == '_')
                c = 'X';
        return name;
    });

// ---------------------------------------------------------------------
// Shard partition parity.
// ---------------------------------------------------------------------

TEST(ShardParity, SkippedJobsAreNeitherFailuresNorCached)
{
    const fs::path dir = freshDir("skip-status");
    sim::ExperimentEngine::Options options;
    options.cacheDir = dir.string();
    options.shardIndex = 1;
    options.shardCount = 1u << 30; // no fingerprint lands on shard 1
                                   // of 2^30 with any likelihood
    sim::ExperimentEngine engine(options);
    const sim::SimJob job = tinyJob(sim::ProviderKind::Baseline);
    const auto id = engine.submit(job);
    engine.flush();

    const sim::JobResult &result = engine.result(id);
    if (result.status == sim::JobStatus::Ok)
        GTEST_SKIP() << "fingerprint landed on shard 1; astronomically"
                        " unlikely but not impossible";
    EXPECT_EQ(result.status, sim::JobStatus::Skipped);
    EXPECT_NE(result.error.find("shard"), std::string::npos);
    EXPECT_EQ(engine.skipped(), 1u);
    EXPECT_EQ(engine.failed(), 0u);
    EXPECT_TRUE(engine.failedJobs().empty());
    EXPECT_EQ(engine.tryStats(id), nullptr);
    EXPECT_THROW(engine.stats(id), sim::SimError);
    // Nothing was negative-cached: the owning shard publishes the
    // real entry, a skip must not shadow it.
    EXPECT_FALSE(fs::exists(
        dir / sim::ExperimentEngine::cacheEntryPath(job)));
    EXPECT_TRUE(engine.allStats().empty());
}

TEST(ShardParity, UnionOfShardRunsEqualsTheUnshardedRun)
{
    // The full Rodinia set under both headline providers, split
    // three ways over one shared cache directory: after all three
    // shard runs, a warm unsharded run simulates nothing and its
    // stats are byte-identical to a cache-disabled reference.
    std::vector<sim::SimJob> jobs;
    for (const std::string &kernel : workloads::rodiniaNames()) {
        jobs.push_back({kernel,
                        sim::GpuConfig::forProvider(
                            sim::ProviderKind::Baseline),
                        0,
                        {}});
        jobs.push_back({kernel,
                        sim::GpuConfig::forProvider(
                            sim::ProviderKind::Regless),
                        0,
                        {}});
    }
    const std::string reference =
        runGridJson(jobs, sim::ExperimentEngine::Options{});

    const fs::path dir = freshDir("shard-parity");
    const unsigned shards = 3;
    std::uint64_t simulated_total = 0;
    for (unsigned i = 1; i <= shards; ++i) {
        sim::ExperimentEngine::Options options;
        options.cacheDir = dir.string();
        options.shardIndex = i;
        options.shardCount = shards;
        sim::ExperimentEngine engine(options);
        for (const sim::SimJob &job : jobs)
            engine.submit(job);
        engine.flush();
        // Every job is accounted for: simulated here, already
        // published by an earlier shard (cache hit), or left to a
        // later one.
        EXPECT_EQ(engine.simulated() + engine.cacheHits() +
                      engine.skipped(),
                  jobs.size())
            << "shard " << i;
        EXPECT_GT(engine.simulated(), 0u) << "shard " << i;
        simulated_total += engine.simulated();
    }
    // The union covers every job exactly once.
    EXPECT_EQ(simulated_total, jobs.size());

    sim::ExperimentEngine::Options warm_options;
    warm_options.cacheDir = dir.string();
    sim::ExperimentEngine warm(warm_options);
    for (const sim::SimJob &job : jobs)
        warm.submit(job);
    std::ostringstream merged;
    sim::writeJson(merged, warm.allStats());
    EXPECT_EQ(warm.simulated(), 0u);
    EXPECT_EQ(warm.cacheHits(), jobs.size());
    EXPECT_EQ(merged.str(), reference);
}

// ---------------------------------------------------------------------
// Multi-process stress over one shared directory.
// ---------------------------------------------------------------------

TEST(MultiProcess, EightWritersOneDirectoryStaysConsistent)
{
    const fs::path dir = freshDir("stress");
    constexpr unsigned kWriters = 8;
    constexpr unsigned kKeys = 32;

    std::vector<pid_t> children;
    for (unsigned w = 0; w < kWriters; ++w) {
        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: hammer every key — load when present, publish
            // when missing — with per-writer chaos: two writers
            // crash after their first temp, two lose a publish race.
            sim::JobCache::Options options;
            options.dir = dir.string();
            options.lockTimeoutMs = 50;
            if (w < 2)
                options.faults.kind =
                    sim::CacheFaultPlan::Kind::CrashAfterTmp;
            else if (w < 4)
                options.faults.kind =
                    sim::CacheFaultPlan::Kind::Clobber;
            sim::JobCache cache(options);
            for (unsigned round = 0; round < 3; ++round) {
                for (unsigned k = 0; k < kKeys; ++k) {
                    const sim::JobCache::Key key = syntheticKey(k);
                    const sim::JobRecord expect = syntheticRecord(k);
                    sim::JobRecord got;
                    if (cache.load(key, got)) {
                        if (got.stats.cycles != expect.stats.cycles ||
                            got.stats.kernel != expect.stats.kernel)
                            _exit(13); // served a wrong record
                    } else {
                        cache.store(key, expect);
                    }
                }
            }
            _exit(0);
        }
        children.push_back(pid);
    }
    for (pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0)
            << "13 means a writer was served a wrong/corrupt record";
    }

    // Every key must now be present, valid, and exact.
    sim::JobCache::Options options;
    options.dir = dir.string();
    sim::JobCache reader(options);
    for (unsigned k = 0; k < kKeys; ++k) {
        sim::JobRecord got;
        ASSERT_TRUE(reader.load(syntheticKey(k), got)) << k;
        EXPECT_EQ(got.stats.cycles, syntheticRecord(k).stats.cycles);
    }
    const sim::CacheSurvey survey = sim::cacheSurveyDir(dir);
    EXPECT_EQ(survey.entries, kKeys);
    EXPECT_EQ(survey.corrupt, 0u);
    EXPECT_EQ(survey.misplaced, 0u);

    // The crashed writers' orphans are reclaimable, and gc leaves a
    // clean directory behind.
    const sim::CacheGcOptions gc_temps = [] {
        sim::CacheGcOptions o;
        o.graceSec = 0.0;
        return o;
    }();
    sim::cacheGcDir(dir, gc_temps);
    EXPECT_EQ(tempFilesUnder(dir), 0u);
    EXPECT_EQ(sim::cacheSurveyDir(dir).entries, kKeys);
}

TEST(MultiProcess, EngineFleetSharedDirectoryByteParity)
{
    // The acceptance bar: an 8-process shared-dir stress run in
    // which every process is a full ExperimentEngine (some with
    // chaos injected) and every process's results are byte-identical
    // to the cache-disabled oracle.
    const std::vector<sim::SimJob> jobs = tinyGrid();
    const std::string reference =
        runGridJson(jobs, sim::ExperimentEngine::Options{});
    const fs::path dir = freshDir("fleet");
    fs::create_directories(dir);

    constexpr unsigned kProcs = 8;
    std::vector<pid_t> children;
    for (unsigned p = 0; p < kProcs; ++p) {
        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            sim::ExperimentEngine::Options options;
            options.cacheDir = (dir / "cache").string();
            if (p % 3 == 1)
                options.cacheFaults.kind =
                    sim::CacheFaultPlan::Kind::Clobber;
            if (p % 3 == 2) {
                options.cacheFaults.kind =
                    sim::CacheFaultPlan::Kind::CrashAfterTmp;
                options.cacheFaults.repeat = true;
            }
            const std::string json = runGridJson(jobs, options);
            std::ofstream(dir / ("out." + std::to_string(p)),
                          std::ios::binary | std::ios::trunc)
                << json;
            _exit(0);
        }
        children.push_back(pid);
    }
    for (pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0);
    }
    for (unsigned p = 0; p < kProcs; ++p) {
        std::ifstream in(dir / ("out." + std::to_string(p)),
                         std::ios::binary);
        ASSERT_TRUE(in.good()) << p;
        std::ostringstream buffer;
        buffer << in.rdbuf();
        EXPECT_EQ(buffer.str(), reference) << "process " << p;
    }
    EXPECT_EQ(sim::cacheSurveyDir(dir / "cache").corrupt, 0u);
}

// ---------------------------------------------------------------------
// Maintenance: survey and gc.
// ---------------------------------------------------------------------

/** Backdate @a path's mtime by @a seconds. */
void
backdate(const fs::path &path, double seconds)
{
    const auto mtime = fs::last_write_time(path);
    fs::last_write_time(
        path, mtime - std::chrono::duration_cast<
                          fs::file_time_type::duration>(
                          std::chrono::duration<double>(seconds)));
}

TEST(CacheSurveyTest, ClassifiesEveryFileKind)
{
    const fs::path dir = freshDir("survey");
    sim::JobCache::Options options;
    options.dir = dir.string();
    sim::JobCache cache(options);
    ASSERT_TRUE(cache.store(syntheticKey(1), syntheticRecord(1)));
    ASSERT_TRUE(cache.store(syntheticKey(2), syntheticRecord(2)));

    // A corrupt entry, a misplaced entry (legacy flat root), a
    // writer temp, and a stray file.
    std::ofstream(cache.entryPath(syntheticKey(2)),
                  std::ios::binary | std::ios::trunc)
        << "{torn";
    std::ofstream(dir / syntheticKey(3).file) << "legacy";
    std::ofstream(cache.entryPath(syntheticKey(1)).string() +
                  ".tmp.999.0")
        << "half";
    std::ofstream(dir / "README.txt") << "hello";

    const sim::CacheSurvey survey = sim::cacheSurveyDir(dir);
    EXPECT_EQ(survey.entries, 1u);
    EXPECT_EQ(survey.okRecords, 1u);
    EXPECT_EQ(survey.corrupt, 2u); // torn entry + unparseable legacy
    EXPECT_EQ(survey.misplaced, 1u);
    EXPECT_EQ(survey.tempFiles, 1u);
    EXPECT_EQ(survey.otherFiles, 1u);
    EXPECT_GE(survey.suspects.size(), 2u);
    EXPECT_EQ(survey.shardsUsed, 2u);
}

TEST(CacheGc, AgePolicyRespectsTheGraceMargin)
{
    const fs::path dir = freshDir("gc-age");
    sim::JobCache::Options options;
    options.dir = dir.string();
    sim::JobCache cache(options);
    for (unsigned k = 0; k < 4; ++k)
        ASSERT_TRUE(cache.store(syntheticKey(k), syntheticRecord(k)));
    backdate(cache.entryPath(syntheticKey(0)), 1000.0);
    backdate(cache.entryPath(syntheticKey(1)), 1000.0);

    sim::CacheGcOptions gc;
    gc.maxAgeSec = 500.0;
    gc.graceSec = 60.0;
    const sim::CacheGcResult result = sim::cacheGcDir(dir, gc);
    EXPECT_EQ(result.removedEntries, 2u);
    EXPECT_EQ(result.keptEntries, 2u);
    sim::JobRecord out;
    EXPECT_FALSE(cache.load(syntheticKey(0), out));
    EXPECT_TRUE(cache.load(syntheticKey(2), out));

    // Young files are protected even when the age policy wants them:
    // they may be a live writer's fresh publish (live-lock safety).
    sim::CacheGcOptions eager;
    eager.maxAgeSec = 0.0001;
    eager.graceSec = 3600.0;
    const sim::CacheGcResult spared = sim::cacheGcDir(dir, eager);
    EXPECT_EQ(spared.removedEntries, 0u);
    EXPECT_EQ(spared.keptEntries, 2u);
}

TEST(CacheGc, SizePolicyEvictsOldestFirst)
{
    const fs::path dir = freshDir("gc-size");
    sim::JobCache::Options options;
    options.dir = dir.string();
    sim::JobCache cache(options);
    std::uint64_t total = 0;
    for (unsigned k = 0; k < 6; ++k) {
        ASSERT_TRUE(cache.store(syntheticKey(k), syntheticRecord(k)));
        backdate(cache.entryPath(syntheticKey(k)),
                 3600.0 * (6 - k)); // key 0 is the oldest
        total += static_cast<std::uint64_t>(
            fs::file_size(cache.entryPath(syntheticKey(k))));
    }
    sim::CacheGcOptions gc;
    gc.maxBytes = total / 2;
    gc.graceSec = 0.0;
    const sim::CacheGcResult result = sim::cacheGcDir(dir, gc);
    EXPECT_GE(result.removedEntries, 2u);
    sim::JobRecord out;
    // Oldest evicted first; the youngest survives.
    EXPECT_FALSE(cache.load(syntheticKey(0), out));
    EXPECT_TRUE(cache.load(syntheticKey(5), out));
}

#if defined(__unix__) || defined(__APPLE__)
TEST(CacheGc, BusyShardIsSkippedNotSpunOn)
{
    const fs::path dir = freshDir("gc-lock");
    sim::JobCache::Options options;
    options.dir = dir.string();
    sim::JobCache cache(options);
    const sim::JobCache::Key key = syntheticKey(7);
    ASSERT_TRUE(cache.store(key, syntheticRecord(7)));
    backdate(cache.entryPath(key), 1000.0);

    // A writer holds the shard lock; flock is not recursive across
    // descriptors, so gc (same process, different fd) must back off,
    // give up within its bound, and leave the shard alone.
    const fs::path lock_path =
        cache.entryPath(key).parent_path() / ".lock";
    const int fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0666);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::flock(fd, LOCK_EX), 0);

    sim::CacheGcOptions gc;
    gc.maxAgeSec = 500.0;
    gc.graceSec = 0.0;
    gc.lockTimeoutMs = 50;
    const sim::CacheGcResult blocked = sim::cacheGcDir(dir, gc);
    EXPECT_EQ(blocked.skippedShards, 1u);
    EXPECT_EQ(blocked.removedEntries, 0u);
    EXPECT_TRUE(fs::exists(cache.entryPath(key)));

    ::flock(fd, LOCK_UN);
    ::close(fd);
    const sim::CacheGcResult freed = sim::cacheGcDir(dir, gc);
    EXPECT_EQ(freed.removedEntries, 1u);
    EXPECT_FALSE(fs::exists(cache.entryPath(key)));
}
#endif

TEST(CacheGc, RemoveCorruptReclaimsSuspects)
{
    const fs::path dir = freshDir("gc-corrupt");
    sim::JobCache::Options options;
    options.dir = dir.string();
    sim::JobCache cache(options);
    ASSERT_TRUE(cache.store(syntheticKey(1), syntheticRecord(1)));
    ASSERT_TRUE(cache.store(syntheticKey(2), syntheticRecord(2)));
    std::ofstream(cache.entryPath(syntheticKey(2)),
                  std::ios::binary | std::ios::trunc)
        << "{torn";
    // Give the corrupt file a safe age so only the policy, not the
    // grace margin, decides.
    backdate(cache.entryPath(syntheticKey(2)), 1000.0);

    sim::CacheGcOptions keep;
    keep.graceSec = 0.0;
    EXPECT_EQ(sim::cacheGcDir(dir, keep).removedEntries, 0u);

    sim::CacheGcOptions reclaim;
    reclaim.graceSec = 0.0;
    reclaim.removeCorrupt = true;
    EXPECT_EQ(sim::cacheGcDir(dir, reclaim).removedEntries, 1u);
    sim::JobRecord out;
    EXPECT_TRUE(cache.load(syntheticKey(1), out));
}

} // namespace
} // namespace regless
