/**
 * @file
 * Assembler tests: syntax acceptance, error reporting with line
 * numbers, directive handling, and the assemble/disassemble round
 * trip for every benchmark kernel.
 */

#include <gtest/gtest.h>

#include "ir/assembler.hh"
#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

TEST(AssemblerTest, MinimalKernel)
{
    ir::Kernel k = ir::assemble("tid r0\nexit\n");
    EXPECT_EQ(k.numInsns(), 2u);
    EXPECT_EQ(k.insn(0).op(), ir::Opcode::Tid);
    EXPECT_TRUE(k.insn(1).isExit());
}

TEST(AssemblerTest, AppendsExitWhenMissing)
{
    ir::Kernel k = ir::assemble("tid r0\nst r0, r0, 64\n");
    EXPECT_TRUE(k.instructions().back().isExit());
}

TEST(AssemblerTest, FullSyntax)
{
    const char *src = R"(
        .kernel demo
        .warps_per_block 4
        .values constant=0.5 stride1=0.2 stride4=0.1 half=0.05

        tid   r0
        imuli r1, r0, 4          # address
        ld    r2, r1, 0
        imad  r3, r2, r0, r0
        setlt r4, r0, r3
        bra   r4, @skip
        st    r3, r1, 65536
        skip:
        exit
    )";
    ir::Kernel k = ir::assemble(src);
    EXPECT_EQ(k.name(), "demo");
    EXPECT_EQ(k.warpsPerBlock(), 4u);
    EXPECT_DOUBLE_EQ(k.valueProfile().constantFrac, 0.5);
    EXPECT_DOUBLE_EQ(k.valueProfile().halfWarpFrac, 0.05);
    // The branch targets the instruction after the store.
    const ir::Instruction &bra = k.insn(5);
    ASSERT_TRUE(bra.isBranch());
    EXPECT_EQ(bra.target(), 7u);
    EXPECT_EQ(bra.srcs().at(0), 4);
}

TEST(AssemblerTest, BackwardBranchLoops)
{
    const char *src = R"(
        movi r0, 0
        movi r1, 10
        head:
        iaddi r0, r0, 1
        setlt r2, r0, r1
        bra r2, @head
        exit
    )";
    ir::Kernel k = ir::assemble(src);
    EXPECT_EQ(k.insn(4).target(), 2u);
}

TEST(AssemblerTest, HexAndNegativeImmediates)
{
    ir::Kernel k = ir::assemble("movi r0, 0x40\niaddi r1, r0, -3\nexit\n");
    EXPECT_EQ(k.insn(0).imm(), 0x40);
    EXPECT_EQ(k.insn(1).imm(), -3);
}

TEST(AssemblerTest, CaseInsensitiveMnemonics)
{
    ir::Kernel k = ir::assemble("TID r0\nIADD r1, r0, r0\nEXIT\n");
    EXPECT_EQ(k.insn(1).op(), ir::Opcode::IAdd);
}

TEST(AssemblerErrors, ReportLineNumbers)
{
    try {
        ir::assemble("tid r0\nbogus r1\nexit\n");
        FAIL() << "expected AssemblyError";
    } catch (const ir::AssemblyError &e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_NE(std::string(e.what()).find("bogus"),
                  std::string::npos);
    }
}

TEST(AssemblerErrors, RejectsBadInput)
{
    EXPECT_THROW(ir::assemble("iadd r0, r1\nexit\n"), ir::AssemblyError);
    EXPECT_THROW(ir::assemble("movi r0\nexit\n"), ir::AssemblyError);
    EXPECT_THROW(ir::assemble("tid x0\nexit\n"), ir::AssemblyError);
    EXPECT_THROW(ir::assemble("bra r0, nowhere\nexit\n"),
                 ir::AssemblyError);
    EXPECT_THROW(ir::assemble("bra r0, @missing\nexit\n"),
                 ir::AssemblyError);
    EXPECT_THROW(ir::assemble("l:\nl:\ntid r0\nexit\n"),
                 ir::AssemblyError);
    EXPECT_THROW(ir::assemble(".bogus 3\ntid r0\nexit\n"),
                 ir::AssemblyError);
    EXPECT_THROW(ir::assemble("tid r0, r1\nexit\n"), ir::AssemblyError);
    EXPECT_THROW(ir::assemble("# only a comment\n"), ir::AssemblyError);
}

class RoundTripTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RoundTripTest, DisassembleReassembleIsStable)
{
    ir::Kernel original = workloads::makeRodinia(GetParam());
    std::string text = ir::disassembleToAsm(original);
    ir::Kernel rebuilt = ir::assemble(text);

    ASSERT_EQ(rebuilt.numInsns(), original.numInsns()) << text;
    for (Pc pc = 0; pc < original.numInsns(); ++pc) {
        EXPECT_EQ(rebuilt.insn(pc).op(), original.insn(pc).op());
        EXPECT_EQ(rebuilt.insn(pc).dst(), original.insn(pc).dst());
        EXPECT_EQ(rebuilt.insn(pc).srcs(), original.insn(pc).srcs());
        EXPECT_EQ(rebuilt.insn(pc).imm(), original.insn(pc).imm());
        EXPECT_EQ(rebuilt.insn(pc).target(), original.insn(pc).target());
    }
    EXPECT_EQ(rebuilt.warpsPerBlock(), original.warpsPerBlock());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, RoundTripTest,
    ::testing::ValuesIn(workloads::rodiniaNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(AssemblerEndToEnd, AssembledKernelRunsIdentically)
{
    ir::Kernel original = workloads::makeRodinia("hotspot");
    ir::Kernel rebuilt =
        ir::assemble(ir::disassembleToAsm(original));

    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    sim::RunStats a = sim::runKernel(original, cfg);
    sim::RunStats b = sim::runKernel(rebuilt, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insns, b.insns);
}

} // namespace
} // namespace regless
