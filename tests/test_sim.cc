/**
 * @file
 * Simulation-module tests: configuration derivation, the synthetic
 * value generator, energy accounting, the No-RF bound, and run-stats
 * harvesting.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

TEST(GpuConfigTest, ProviderNames)
{
    EXPECT_STREQ(sim::providerName(sim::ProviderKind::Baseline),
                 "baseline");
    EXPECT_STREQ(sim::providerName(sim::ProviderKind::Regless),
                 "regless");
    EXPECT_STREQ(sim::providerName(sim::ProviderKind::ReglessNoCompressor),
                 "regless_nocomp");
}

TEST(GpuConfigTest, ForProviderWiresSchedulers)
{
    EXPECT_EQ(sim::GpuConfig::forProvider(sim::ProviderKind::Baseline)
                  .sm.scheduler,
              arch::SchedulerPolicy::Gto);
    EXPECT_EQ(
        sim::GpuConfig::forProvider(sim::ProviderKind::Rfh).sm.scheduler,
        arch::SchedulerPolicy::TwoLevel);
    EXPECT_EQ(
        sim::GpuConfig::forProvider(sim::ProviderKind::Rfv).sm.scheduler,
        arch::SchedulerPolicy::TwoLevel);
    EXPECT_FALSE(
        sim::GpuConfig::forProvider(sim::ProviderKind::ReglessNoCompressor)
            .regless.compressorEnabled);
}

TEST(GpuConfigTest, OsuCapacityDerivesCompilerLimits)
{
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    cfg.setOsuCapacity(128);
    // 128 / 4 shards / 8 banks = 4 lines per bank.
    EXPECT_LE(cfg.compiler.maxRegsPerBank, 4u);
    EXPECT_GE(cfg.compiler.maxRegsPerBank, 1u);
    cfg.setOsuCapacity(2048);
    EXPECT_EQ(cfg.compiler.maxRegsPerBank, 12u);
}

TEST(ValueGeneratorTest, RespectsProfileFractions)
{
    ir::ValueProfile all_const;
    all_const.constantFrac = 1.0;
    all_const.stride1Frac = 0.0;
    all_const.stride4Frac = 0.0;
    all_const.halfWarpFrac = 0.0;
    auto gen = sim::GpuSimulator::valueGenerator(all_const);
    // Every 128-byte line yields a constant value.
    for (Addr line = 0; line < 50; ++line) {
        std::uint32_t first = gen(line * 128);
        for (unsigned off = 4; off < 128; off += 4)
            ASSERT_EQ(gen(line * 128 + off), first);
    }

    ir::ValueProfile all_stride;
    all_stride.constantFrac = 0.0;
    all_stride.stride1Frac = 1.0;
    all_stride.stride4Frac = 0.0;
    all_stride.halfWarpFrac = 0.0;
    auto sgen = sim::GpuSimulator::valueGenerator(all_stride);
    for (Addr line = 0; line < 50; ++line) {
        std::uint32_t first = sgen(line * 128);
        for (unsigned w = 1; w < 32; ++w)
            ASSERT_EQ(sgen(line * 128 + 4 * w), first + w);
    }
}

TEST(ValueGeneratorTest, Deterministic)
{
    auto a = sim::GpuSimulator::valueGenerator(ir::ValueProfile{});
    auto b = sim::GpuSimulator::valueGenerator(ir::ValueProfile{});
    for (Addr addr = 0; addr < 4096; addr += 4)
        ASSERT_EQ(a(addr), b(addr));
}

TEST(RunStatsTest, EnergyComponentsPositive)
{
    sim::RunStats stats = sim::runKernel(workloads::makeRodinia("nn"),
                                         sim::ProviderKind::Baseline);
    EXPECT_GT(stats.energy.regDynamic, 0.0);
    EXPECT_GT(stats.energy.regStatic, 0.0);
    EXPECT_GT(stats.energy.memory, 0.0);
    EXPECT_GT(stats.energy.rest, 0.0);
    EXPECT_DOUBLE_EQ(stats.energy.total(),
                     stats.energy.registerStructures() +
                         stats.energy.memory + stats.energy.rest);
}

TEST(RunStatsTest, NoRfBoundZeroesRegisterEnergy)
{
    sim::RunStats stats = sim::runKernel(workloads::makeRodinia("nn"),
                                         sim::ProviderKind::Baseline);
    energy::EnergyBreakdown bound = sim::noRfBound(stats);
    EXPECT_DOUBLE_EQ(bound.registerStructures(), 0.0);
    EXPECT_DOUBLE_EQ(bound.memory, stats.energy.memory);
    EXPECT_LT(bound.total(), stats.energy.total());
}

TEST(RunStatsTest, NoRfBoundRequiresBaseline)
{
    sim::RunStats stats = sim::runKernel(workloads::makeRodinia("nn"),
                                         sim::ProviderKind::Regless);
    EXPECT_THROW(sim::noRfBound(stats), sim::SimError);
}

TEST(RunStatsTest, ReglessCountsMetadataAndPreloads)
{
    sim::RunStats stats = sim::runKernel(workloads::makeRodinia("bfs"),
                                         sim::ProviderKind::Regless);
    EXPECT_GT(stats.metadataInsns, 0u);
    EXPECT_GT(stats.totalPreloads(), 0u);
    EXPECT_GT(stats.osuAccesses, stats.insns);
    EXPECT_GT(stats.regionLiveMean, 0.0);
    EXPECT_GT(stats.regionCyclesMean, 0.0);
}

TEST(RunStatsTest, CompressorEnergyOnlyWithCompressor)
{
    sim::RunStats with = sim::runKernel(workloads::makeRodinia("hotspot"),
                                        sim::ProviderKind::Regless);
    sim::RunStats without =
        sim::runKernel(workloads::makeRodinia("hotspot"),
                       sim::ProviderKind::ReglessNoCompressor);
    EXPECT_GT(with.energy.compressor, 0.0);
    EXPECT_DOUBLE_EQ(without.energy.compressor, 0.0);
}

TEST(EnergyModelTest, AccessEnergyScalesWithCapacity)
{
    energy::EnergyConfig cfg;
    EXPECT_DOUBLE_EQ(cfg.accessEnergy(2048), cfg.rfAccess2048);
    EXPECT_LT(cfg.accessEnergy(512), cfg.accessEnergy(1024));
    EXPECT_LT(cfg.accessEnergy(1024), cfg.accessEnergy(2048));
    // Superlinear scaling: quarter capacity is cheaper than quarter
    // energy.
    EXPECT_LT(cfg.accessEnergy(512), cfg.rfAccess2048 / 4.0 * 1.05);
}

TEST(EnergyModelTest, StaticPowerLinearInCapacity)
{
    energy::EnergyConfig cfg;
    EXPECT_DOUBLE_EQ(cfg.staticPower(1024),
                     cfg.rfStatic2048PerCycle / 2.0);
}

TEST(AreaModelTest, MonotoneAndSplit)
{
    energy::AreaConfig area;
    double prev = 0.0;
    for (unsigned cap : {128u, 256u, 512u, 1024u, 2048u}) {
        energy::AreaBreakdown b = area.regless(cap);
        EXPECT_GT(b.total(), prev);
        EXPECT_GT(b.storage, 0.0);
        EXPECT_GT(b.logic, 0.0);
        EXPECT_GT(b.compressor, 0.0);
        prev = b.total();
    }
    // Without the compressor, smaller.
    EXPECT_LT(area.regless(512, false).total(),
              area.regless(512, true).total());
}

TEST(ExperimentTest, RunReglessAppliesCapacity)
{
    sim::RunStats small =
        sim::runRegless(workloads::makeRodinia("srad_v1"), 128);
    sim::RunStats large =
        sim::runRegless(workloads::makeRodinia("srad_v1"), 1024);
    // Less staging space -> more backing-store traffic.
    EXPECT_GT(small.l1PreloadReqs + small.l1StoreReqs,
              large.l1PreloadReqs + large.l1StoreReqs);
    EXPECT_GE(small.cycles, large.cycles);
}

TEST(ExperimentTest, CellFormatting)
{
    EXPECT_EQ(sim::cell(std::string("ab"), 5), "ab   ");
    EXPECT_EQ(sim::cell(1.5, 7, 2), "1.50   ");
}

TEST(GpuSimulatorTest, IntrospectionAccessors)
{
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    sim::GpuSimulator g(workloads::makeRodinia("nn"), cfg);
    EXPECT_GT(g.compiled().regions().size(), 0u);
    EXPECT_EQ(g.config().provider, sim::ProviderKind::Regless);
    sim::RunStats stats = g.run();
    EXPECT_EQ(stats.kernel, "nn");
    EXPECT_TRUE(g.sm().done());
}

TEST(GpuSimulatorTest, DeterministicAcrossRuns)
{
    auto run_once = [] {
        return sim::runKernel(workloads::makeRodinia("kmeans"),
                              sim::ProviderKind::Regless);
    };
    sim::RunStats a = run_once();
    sim::RunStats b = run_once();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insns, b.insns);
    EXPECT_EQ(a.totalPreloads(), b.totalPreloads());
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

} // namespace
} // namespace regless

#include "sim/multi_sm.hh"

namespace regless
{
namespace
{

TEST(MultiSmTest, AggregatesAcrossSms)
{
    sim::MultiSmSimulator multi(
        workloads::makeRodinia("nn"),
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline), 4);
    sim::RunStats total = multi.run();
    ASSERT_EQ(multi.perSm().size(), 4u);
    // Work sums; wall clock is the slowest SM.
    std::uint64_t insns = 0;
    Cycle slowest = 0;
    for (const sim::RunStats &s : multi.perSm()) {
        insns += s.insns;
        slowest = std::max(slowest, s.cycles);
    }
    EXPECT_EQ(total.insns, insns);
    EXPECT_EQ(total.cycles, slowest);
    EXPECT_EQ(total.insns, 4u * multi.perSm()[0].insns);
}

TEST(MultiSmTest, SharedDramSeesAllTraffic)
{
    sim::MultiSmSimulator multi(
        workloads::makeRodinia("nn"),
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline), 2);
    sim::RunStats total = multi.run();
    EXPECT_EQ(total.dramAccesses,
              multi.dram().stats().counter("accesses").value());
    EXPECT_GT(total.dramAccesses, 0u);
}

TEST(MultiSmTest, ContentionSlowsMemoryBoundKernels)
{
    auto cycles_at = [](unsigned sms) {
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
        // Make DRAM the bottleneck so contention is visible.
        cfg.mem.dram.cyclesPerLine = 32.0;
        sim::MultiSmSimulator multi(workloads::makeRodinia("bfs"), cfg,
                                    sms);
        return multi.run().cycles;
    };
    EXPECT_GT(cycles_at(8), cycles_at(1));
}

TEST(MultiSmTest, ReglessMatchesSingleSmBehaviour)
{
    sim::MultiSmSimulator multi(
        workloads::makeRodinia("hotspot"),
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless), 2);
    sim::RunStats total = multi.run();
    EXPECT_GT(total.totalPreloads(), 0u);
    // Both SMs behave identically on identical work.
    EXPECT_EQ(multi.perSm()[0].insns, multi.perSm()[1].insns);
}

} // namespace
} // namespace regless

#include "sim/stats_io.hh"

namespace regless
{
namespace
{

TEST(StatsIoTest, JsonContainsKeyFields)
{
    sim::RunStats stats = sim::runKernel(workloads::makeRodinia("nn"),
                                         sim::ProviderKind::Regless);
    std::string json = sim::toJson(stats);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"kernel\":\"nn\""), std::string::npos);
    EXPECT_NE(json.find("\"provider\":\"regless\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles\":"), std::string::npos);
    EXPECT_NE(json.find("\"energy_total\":"), std::string::npos);
    EXPECT_NE(json.find("\"preload_src_osu\":"), std::string::npos);
}

TEST(StatsIoTest, ArrayOfRuns)
{
    std::vector<sim::RunStats> runs;
    runs.push_back(sim::runKernel(workloads::makeRodinia("nn"),
                                  sim::ProviderKind::Baseline));
    runs.push_back(sim::runKernel(workloads::makeRodinia("nn"),
                                  sim::ProviderKind::Regless));
    std::ostringstream oss;
    sim::writeJson(oss, runs);
    std::string json = oss.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    EXPECT_NE(json.find("\"baseline\""), std::string::npos);
    EXPECT_NE(json.find("\"regless\""), std::string::npos);
}

TEST(StatsIoTest, EscapesQuotes)
{
    sim::RunStats stats;
    stats.kernel = "we\"ird";
    std::string json = sim::toJson(stats);
    EXPECT_NE(json.find("we\\\"ird"), std::string::npos);
}

} // namespace
} // namespace regless
