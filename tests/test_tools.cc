/**
 * @file
 * Tests for the tooling layer: register-name compaction and the
 * issue-trace checker.
 */

#include <gtest/gtest.h>

#include "compiler/name_compactor.hh"
#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "sim/trace_checker.hh"
#include "workloads/kernel_builder.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

using workloads::KernelBuilder;

TEST(NameCompactorTest, ReducesSequentialTemporaries)
{
    // 20 sequential short-lived temporaries need very few names.
    KernelBuilder b("chain");
    RegId t = b.tid();
    RegId x = t;
    for (int i = 0; i < 20; ++i)
        x = b.iaddi(x, 1);
    b.st(x, b.imuli(t, 4));
    ir::Kernel k = b.build();

    compiler::CompactionResult result = compiler::compactNames(k);
    EXPECT_GT(result.originalRegs, 20u);
    EXPECT_LE(result.compactedRegs, 5u);
}

TEST(NameCompactorTest, CoLiveValuesKeepDistinctNames)
{
    KernelBuilder b("colive");
    RegId t = b.tid();
    std::vector<RegId> vals;
    for (int i = 0; i < 8; ++i)
        vals.push_back(b.iaddi(t, i));
    RegId acc = b.movi(0);
    for (RegId v : vals)
        acc = b.iadd(acc, v);
    b.st(acc, b.imuli(t, 4));
    ir::Kernel k = b.build();

    compiler::CompactionResult result = compiler::compactNames(k);
    // The 8 values + t + accumulator are co-live: at least 10 names.
    EXPECT_GE(result.compactedRegs, 10u);
    EXPECT_LT(result.compactedRegs, result.originalRegs);
}

class CompactionEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CompactionEquivalence, CompactedKernelComputesSameResults)
{
    ir::Kernel original = workloads::makeRodinia(GetParam());
    compiler::CompactionResult result =
        compiler::compactNames(workloads::makeRodinia(GetParam()));
    ASSERT_LE(result.compactedRegs, result.originalRegs);

    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    sim::GpuSimulator a(original, cfg);
    sim::GpuSimulator b(result.kernel, cfg);
    a.run();
    b.run();
    for (Addr off = 0; off < (4u << 20); off += 4 * 251) {
        Addr addr = cfg.sm.dataBase + off;
        ASSERT_EQ(a.memory().readWord(addr), b.memory().readWord(addr))
            << GetParam() << " offset " << off;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, CompactionEquivalence,
    ::testing::Values("hotspot", "heartwall", "hybridsort", "lud",
                      "particle_filter", "srad_v2"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(NameCompactorTest, CompactedKernelRunsUnderRegless)
{
    compiler::CompactionResult result =
        compiler::compactNames(workloads::makeRodinia("dwt2d"));
    sim::RunStats stats =
        sim::runKernel(result.kernel, sim::ProviderKind::Regless);
    EXPECT_GT(stats.cycles, 0u);
}

TEST(TraceCheckerTest, CleanTraceOnBaseline)
{
    ir::Kernel kernel = workloads::makeRodinia("heartwall");
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    sim::GpuSimulator g(kernel, cfg);
    sim::TraceChecker checker(g.compiled(), cfg.sm.numWarps,
                              /*check_regions=*/false);
    checker.attach(g.sm());
    g.run();
    EXPECT_GT(checker.events(), 0u);
    EXPECT_TRUE(checker.violations().empty())
        << checker.violations().front();
}

TEST(TraceCheckerTest, RegionAtomicityHoldsUnderRegless)
{
    ir::Kernel kernel = workloads::makeRodinia("srad_v2");
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    sim::GpuSimulator g(kernel, cfg);
    sim::TraceChecker checker(g.compiled(), cfg.sm.numWarps,
                              /*check_regions=*/true);
    checker.attach(g.sm());
    g.run();
    EXPECT_TRUE(checker.violations().empty())
        << checker.violations().front();
}

TEST(TraceCheckerTest, EventLogRecordsIssues)
{
    KernelBuilder b("tiny");
    b.st(b.tid(), b.movi(0));
    ir::Kernel kernel = b.build();
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    sim::GpuSimulator g(kernel, cfg);
    sim::TraceChecker checker(g.compiled(), cfg.sm.numWarps, false,
                              /*keep_events=*/true);
    checker.attach(g.sm());
    sim::RunStats stats = g.run();
    EXPECT_EQ(checker.events(), stats.insns);
    EXPECT_EQ(checker.eventLog().size(), stats.insns);
    // Events are in nondecreasing cycle order.
    for (std::size_t i = 1; i < checker.eventLog().size(); ++i) {
        EXPECT_GE(checker.eventLog()[i].cycle,
                  checker.eventLog()[i - 1].cycle);
    }
}

TEST(TraceCheckerTest, DetectsUseBeforeDef)
{
    // Hand-build a malformed kernel: read r5 with no definition.
    std::vector<ir::Instruction> insns;
    insns.emplace_back(ir::Opcode::Tid, 0, std::vector<RegId>{});
    insns.emplace_back(ir::Opcode::IAdd, 1, std::vector<RegId>{0, 5});
    insns.emplace_back(ir::Opcode::StGlobal, invalidReg,
                       std::vector<RegId>{1, 0}, 0);
    insns.emplace_back(ir::Opcode::Exit, invalidReg,
                       std::vector<RegId>{});
    ir::Kernel kernel("malformed", std::move(insns));

    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    sim::GpuSimulator g(kernel, cfg);
    sim::TraceChecker checker(g.compiled(), cfg.sm.numWarps, false);
    checker.attach(g.sm());
    g.run();
    ASSERT_FALSE(checker.violations().empty());
    EXPECT_NE(checker.violations().front().find("before any definition"),
              std::string::npos);
}

TEST(TraceCheckerTest, AllBenchmarksHaveCleanReglessTraces)
{
    for (const auto &name : workloads::rodiniaNames()) {
        ir::Kernel kernel = workloads::makeRodinia(name);
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
        sim::GpuSimulator g(kernel, cfg);
        sim::TraceChecker checker(g.compiled(), cfg.sm.numWarps, true);
        checker.attach(g.sm());
        g.run();
        EXPECT_TRUE(checker.violations().empty())
            << name << ": " << checker.violations().front();
    }
}

} // namespace
} // namespace regless

#include "compiler/verifier.hh"
#include "mem/memory_system.hh"
#include "regless/compressor.hh"

namespace regless
{
namespace
{

class VerifierTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(VerifierTest, BenchmarkKernelsVerifyClean)
{
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia(GetParam()));
    std::vector<std::string> findings =
        compiler::verifyCompiledKernel(ck);
    EXPECT_TRUE(findings.empty())
        << GetParam() << ": " << findings.front();
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, VerifierTest,
    ::testing::ValuesIn(workloads::rodiniaNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(VerifierTest, DetectsCorruptedRegion)
{
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("nn"));
    // Break an invariant: claim a region needs zero capacity.
    auto regions = ck.regions();
    regions[0].maxLive += 3;
    compiler::CompiledKernel broken(ck.kernel(), std::move(regions),
                                    ck.lifetimeStats(),
                                    ck.metadataInsns());
    std::vector<std::string> findings =
        compiler::verifyCompiledKernel(broken);
    ASSERT_FALSE(findings.empty());
    EXPECT_NE(findings.front().find("maxLive"), std::string::npos);
}

TEST(VerifierTest, NoLoadUseCheckWhenSplitDisabled)
{
    compiler::CompilerConfig cfg;
    cfg.splitLoadUse = false;
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("kmeans"), cfg);
    // With the split disabled, load/use pairs are expected; verify
    // everything else still holds.
    std::vector<std::string> findings =
        compiler::verifyCompiledKernel(ck, /*check_load_use=*/false);
    EXPECT_TRUE(findings.empty()) << findings.front();
}

TEST(StatsDumpTest, ProviderAndSimulatorDumpStats)
{
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    sim::GpuSimulator g(workloads::makeRodinia("nn"), cfg);
    g.run();
    std::ostringstream oss;
    g.dumpStats(oss);
    std::string text = oss.str();
    EXPECT_NE(text.find("sm.insns_issued"), std::string::npos);
    EXPECT_NE(text.find("cm0.activations"), std::string::npos);
    EXPECT_NE(text.find("osu0.reads"), std::string::npos);
    EXPECT_NE(text.find("l1.hits"), std::string::npos);
    EXPECT_NE(text.find("dram.accesses"), std::string::npos);
}

TEST(CompressorMaskTest, DisabledPatternsDoNotMatch)
{
    mem::MemorySystem mem;
    staging::CompressorConfig cfg;
    cfg.patternMask =
        1u << static_cast<unsigned>(staging::Pattern::Constant);
    staging::Compressor comp("c", cfg, mem, 0x6000'0000, 64);

    ir::LaneValues constant{};
    constant.fill(9);
    EXPECT_TRUE(comp.compressEvict(0, 0, constant, 0).compressed);

    ir::LaneValues stride{};
    for (unsigned i = 0; i < warpSize; ++i)
        stride[i] = 100 + i;
    EXPECT_FALSE(comp.compressEvict(0, 8, stride, 0).compressed);
}

} // namespace
} // namespace regless
