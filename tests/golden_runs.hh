/**
 * @file
 * Shared golden-run fixture for the test suites. Reference runs are
 * single-SM, skip-off (cycleSkip = false) executions memoized by
 * (kernel, provider), so suites that sweep the Rodinia set against a
 * reference — the slot-invariant tests, the cycle-skip differential
 * oracle, the property fuzzer — re-simulate each reference at most
 * once per process instead of once per test.
 *
 * The cache deliberately keys on the *canonical* per-provider
 * configuration (GpuConfig::forProvider). Tests that perturb the
 * configuration (faults, watchdog windows, trace paths, ...) must run
 * their own references; the fixture would otherwise hand them stats
 * from a different machine.
 */

#ifndef REGLESS_TESTS_GOLDEN_RUNS_HH
#define REGLESS_TESTS_GOLDEN_RUNS_HH

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>

#include "sim/experiment.hh"
#include "sim/gpu_config.hh"
#include "sim/run_stats.hh"
#include "workloads/rodinia.hh"

namespace regless::testutil
{

/** The canonical config for @a kind with the skip engine disabled. */
inline sim::GpuConfig
referenceConfig(sim::ProviderKind kind)
{
    sim::GpuConfig cfg = sim::GpuConfig::forProvider(kind);
    cfg.sm.cycleSkip = false;
    return cfg;
}

/**
 * Memoized skip-off reference run of Rodinia kernel @a kernel under
 * the canonical configuration for @a kind. The returned reference
 * stays valid for the life of the process.
 */
inline const sim::RunStats &
goldenRun(const std::string &kernel, sim::ProviderKind kind)
{
    static std::map<std::pair<std::string, sim::ProviderKind>,
                    sim::RunStats>
        cache;
    const auto key = std::make_pair(kernel, kind);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key,
                          sim::runKernel(workloads::makeRodinia(kernel),
                                         referenceConfig(kind)))
                 .first;
    }
    return it->second;
}

/**
 * @a stats with the cycle-skip meta-counters zeroed. The differential
 * oracles compare skip-on against skip-off runs field-for-field;
 * skipped_cycles/skip_events differ between the two by definition
 * (they count the engine's own activity), so both sides are compared
 * through this filter.
 */
inline sim::RunStats
withoutSkipMeta(sim::RunStats stats)
{
    stats.skippedCycles = 0;
    stats.skipEvents = 0;
    return stats;
}

/** issued + sum(stalls), the left side of the slot invariant. */
inline std::uint64_t
totalSlots(const sim::RunStats &stats)
{
    std::uint64_t total = stats.issuedSlots;
    for (std::uint64_t s : stats.stallSlots)
        total += s;
    return total;
}

/**
 * The closed-account invariant (DESIGN.md §10): every scheduler slot
 * of every cycle is charged to exactly one bucket.
 */
inline void
expectSlotInvariant(const sim::RunStats &stats, unsigned schedulers,
                    const std::string &label)
{
    EXPECT_EQ(totalSlots(stats), schedulers * stats.cycles) << label;
    EXPECT_GT(stats.issuedSlots, 0u) << label;
}

} // namespace regless::testutil

#endif // REGLESS_TESTS_GOLDEN_RUNS_HH
