/**
 * @file
 * Workload tests: every synthetic Rodinia kernel compiles, respects
 * region invariants, and completes under both the baseline and
 * RegLess with identical architectural results. Parameterized over all
 * 21 benchmark names.
 */

#include <gtest/gtest.h>

#include <set>

#include "compiler/compiler.hh"
#include "ir/cfg_analysis.hh"
#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

class RodiniaTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RodiniaTest, BuildsAndValidates)
{
    ir::Kernel kernel = workloads::makeRodinia(GetParam());
    EXPECT_EQ(kernel.name(), GetParam());
    EXPECT_GT(kernel.numInsns(), 5u);
    EXPECT_TRUE(kernel.instructions().back().isExit());
    EXPECT_GT(kernel.numRegs(), 2u);
    // Every block reachable block has a terminator or falls through.
    ir::CfgAnalysis cfg(kernel);
    EXPECT_TRUE(cfg.reachable(0));
}

TEST_P(RodiniaTest, CompilesIntoValidRegions)
{
    ir::Kernel kernel = workloads::makeRodinia(GetParam());
    compiler::CompiledKernel ck = compiler::compile(kernel);
    EXPECT_GT(ck.regions().size(), 1u);

    std::vector<unsigned> covered(ck.kernel().numInsns(), 0);
    for (const compiler::Region &region : ck.regions()) {
        EXPECT_LE(region.startPc, region.endPc);
        EXPECT_EQ(ck.kernel().blockOf(region.startPc),
                  ck.kernel().blockOf(region.endPc));
        EXPECT_GE(region.reservedLines(), region.maxLive);
        for (Pc pc = region.startPc; pc <= region.endPc; ++pc)
            ++covered[pc];
        // Inputs and preloads correspond one-to-one.
        EXPECT_EQ(region.inputs.size(), region.preloads.size());
        EXPECT_GE(region.metadataInsns, 1u);
    }
    for (unsigned c : covered)
        EXPECT_EQ(c, 1u);
}

TEST_P(RodiniaTest, LoadAndFirstUseNeverShareRegion)
{
    ir::Kernel kernel = workloads::makeRodinia(GetParam());
    compiler::CompiledKernel ck = compiler::compile(kernel);
    const ir::Kernel &k = ck.kernel();
    for (Pc pc = 0; pc < k.numInsns(); ++pc) {
        const ir::Instruction &insn = k.insn(pc);
        if (!insn.isGlobalLoad())
            continue;
        compiler::RegionId load_region = ck.regionAt(pc);
        const compiler::Region &region = ck.region(load_region);
        for (Pc use = pc + 1; use <= region.endPc; ++use) {
            const auto &srcs = k.insn(use).srcs();
            EXPECT_EQ(std::count(srcs.begin(), srcs.end(), insn.dst()),
                      0)
                << GetParam() << " pc " << pc << " use " << use;
            if (k.insn(use).writesReg() && k.insn(use).dst() == insn.dst())
                break;
        }
    }
}

TEST_P(RodiniaTest, BaselineCompletesWithProgress)
{
    sim::RunStats stats = sim::runKernel(
        workloads::makeRodinia(GetParam()), sim::ProviderKind::Baseline);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.insns, 64u);
    EXPECT_GT(stats.rfReads + stats.rfWrites, stats.insns);
}

TEST_P(RodiniaTest, ReglessMatchesBaselineOutputs)
{
    sim::GpuConfig base_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    sim::GpuConfig rl_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    sim::GpuSimulator base(workloads::makeRodinia(GetParam()), base_cfg);
    sim::GpuSimulator rl(workloads::makeRodinia(GetParam()), rl_cfg);
    base.run();
    rl.run();
    // All architecturally stored words must match; sample the data
    // segment densely enough to catch divergence-path errors.
    for (Addr off = 0; off < (4u << 20); off += 4 * 131) {
        Addr a = base_cfg.sm.dataBase + off;
        ASSERT_EQ(base.memory().readWord(a), rl.memory().readWord(a))
            << GetParam() << " at offset " << off;
    }
}

TEST_P(RodiniaTest, WorkScaleGrowsDynamicWork)
{
    sim::RunStats small = sim::runKernel(
        workloads::makeRodinia(GetParam(), 1),
        sim::ProviderKind::Baseline);
    sim::RunStats big = sim::runKernel(
        workloads::makeRodinia(GetParam(), 2),
        sim::ProviderKind::Baseline);
    EXPECT_GT(big.insns, small.insns) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, RodiniaTest,
    ::testing::ValuesIn(workloads::rodiniaNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(RodiniaRegistryTest, TwentyOneUniqueNames)
{
    const auto &names = workloads::rodiniaNames();
    EXPECT_EQ(names.size(), 21u);
    std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
}

TEST(RodiniaRegistryTest, UnknownNameIsFatal)
{
    EXPECT_THROW(workloads::makeRodinia("not_a_benchmark"),
                 sim::SimError);
}

TEST(RodiniaRegistryTest, AllRodiniaBuildsEverything)
{
    auto kernels = workloads::allRodinia();
    EXPECT_EQ(kernels.size(), 21u);
}

TEST(RodiniaCharacterTest, CompressibilityVariesAcrossSuite)
{
    // dwt2d is engineered to compress poorly, pathfinder well; check
    // via compressor hit statistics end to end.
    sim::RunStats noisy = sim::runKernel(workloads::makeRodinia("dwt2d"),
                                         sim::ProviderKind::Regless);
    sim::RunStats regular =
        sim::runKernel(workloads::makeRodinia("pathfinder"),
                       sim::ProviderKind::Regless);
    double noisy_frac =
        noisy.totalPreloads()
            ? static_cast<double>(noisy.preloadSrcL1 +
                                  noisy.preloadSrcL2Dram) /
                  noisy.totalPreloads()
            : 0.0;
    double regular_frac =
        regular.totalPreloads()
            ? static_cast<double>(regular.preloadSrcL1 +
                                  regular.preloadSrcL2Dram) /
                  regular.totalPreloads()
            : 0.0;
    EXPECT_GE(noisy_frac, regular_frac);
}

TEST(RodiniaCharacterTest, DivergentKernelsDiverge)
{
    for (const char *name : {"bfs", "heartwall", "hybridsort"}) {
        sim::GpuConfig cfg =
            sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
        sim::GpuSimulator g(workloads::makeRodinia(name), cfg);
        g.run();
        EXPECT_GT(
            g.sm().stats().counter("divergent_branches").value(), 0u)
            << name;
    }
}

TEST(RodiniaCharacterTest, ConservativeLivenessInHybridsort)
{
    ir::Kernel kernel = workloads::makeRodinia("hybridsort");
    compiler::CompiledKernel ck = compiler::compile(kernel);
    // The redefine-before-read-on-a-path pattern must produce soft
    // definitions (the paper's conservative-liveness pathology).
    EXPECT_GT(ck.lifetimeStats().softDefRegs, 0u);
}

TEST(RodiniaCharacterTest, RegionSizeSpreadMatchesPaperOrdering)
{
    // lud/dwt2d (compute) build bigger regions than bfs (memory).
    auto mean_insns = [](const char *name) {
        return compiler::compile(workloads::makeRodinia(name))
            .meanInsnsPerRegion();
    };
    EXPECT_GT(mean_insns("lud"), mean_insns("bfs"));
    EXPECT_GT(mean_insns("dwt2d"), mean_insns("bfs"));
}

} // namespace
} // namespace regless
