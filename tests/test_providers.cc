/**
 * @file
 * Comparison-provider tests: RFV renaming/spilling and RFH static
 * level assignment, plus their end-to-end behaviour.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "regfile/baseline_rf.hh"
#include "regfile/rf_hierarchy.hh"
#include "regfile/rf_virtualization.hh"
#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "workloads/kernel_builder.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

using workloads::KernelBuilder;

ir::Kernel
simpleKernel()
{
    KernelBuilder b("simple");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId x = b.iaddi(t, 1);   // x dies at the next insn
    RegId y = b.imul(x, x);    // y long-ish lived
    RegId z = b.iadd(y, t);
    b.st(z, addr);
    return b.build();
}

TEST(RfvTest, AllocatesOnWriteReleasesOnLastUse)
{
    compiler::CompiledKernel ck = compiler::compile(
        simpleKernel(), [] {
            compiler::CompilerConfig cfg;
            cfg.reassignBanks = false;
            return cfg;
        }());
    regfile::RfVirtualization rfv(ck, 16);
    arch::Warp warp(0, 0, ck.kernel().numRegs());

    // Drive the instruction stream by hand.
    for (Pc pc = 0; pc < ck.kernel().numInsns(); ++pc) {
        const ir::Instruction &insn = ck.kernel().insn(pc);
        EXPECT_TRUE(rfv.canIssue(warp, pc));
        rfv.onIssue(warp, pc, insn, pc, pc + 1);
        if (!insn.isExit())
            warp.stack().advance();
    }
    // After the store, only dead values should be... everything
    // released except registers with no static last use.
    EXPECT_GT(rfv.stats().counter("releases").value(), 0u);
    EXPECT_LE(rfv.allocated(), 2u);
}

TEST(RfvTest, SpillsWhenOverCommitted)
{
    compiler::CompiledKernel ck = compiler::compile(simpleKernel());
    regfile::RfVirtualization rfv(ck, 2); // absurdly small
    arch::Warp warp(0, 0, ck.kernel().numRegs());
    for (Pc pc = 0; pc < ck.kernel().numInsns(); ++pc) {
        const ir::Instruction &insn = ck.kernel().insn(pc);
        rfv.onIssue(warp, pc, insn, pc, pc + 1);
        if (!insn.isExit())
            warp.stack().advance();
    }
    EXPECT_GT(rfv.stats().counter("spill_stores").value(), 0u);
    EXPECT_LE(rfv.allocated(), 2u);
}

TEST(RfvTest, SpilledSourceChargesDelay)
{
    compiler::CompiledKernel ck = compiler::compile(
        simpleKernel(), [] {
            compiler::CompilerConfig cfg;
            cfg.reassignBanks = false;
            return cfg;
        }());
    regfile::RfVirtualization rfv(ck, 1, /*spill_penalty=*/50);
    arch::Warp warp(0, 0, ck.kernel().numRegs());
    // Execute defs of t (r0) and addr, x... with 1 physical register,
    // every older value spills immediately.
    for (Pc pc = 0; pc < 3; ++pc) {
        rfv.onIssue(warp, pc, ck.kernel().insn(pc), pc, pc + 1);
        warp.stack().advance();
    }
    // pc 3 (imul) reads x which is mapped, but earlier regs spilled;
    // find an instruction whose source is spilled.
    std::uint64_t spills = rfv.stats().counter("spill_stores").value();
    EXPECT_GT(spills, 0u);
}

TEST(RfvTest, EndToEndMatchesBaseline)
{
    sim::GpuConfig base_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    sim::GpuConfig rfv_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Rfv);
    sim::GpuSimulator base(workloads::makeRodinia("hotspot"), base_cfg);
    sim::GpuSimulator rfv(workloads::makeRodinia("hotspot"), rfv_cfg);
    base.run();
    rfv.run();
    for (Addr off = 0; off < (1u << 19); off += 4 * 257) {
        Addr a = base_cfg.sm.dataBase + off;
        ASSERT_EQ(base.memory().readWord(a), rfv.memory().readWord(a));
    }
}

TEST(RfhTest, ShortLivedValuesAvoidTheMrf)
{
    compiler::CompilerConfig ccfg;
    ccfg.reassignBanks = false;
    compiler::CompiledKernel ck =
        compiler::compile(simpleKernel(), ccfg);
    regfile::RfHierarchy rfh(ck);
    // x (defined at pc 2, single use at pc 3) should be LRF or ORF.
    RegId x = ck.kernel().insn(2).dst();
    EXPECT_NE(rfh.levelOf(x), regfile::RfLevel::Mrf);
}

TEST(RfhTest, CrossBlockValuesUseTheMrf)
{
    KernelBuilder b("crossblock");
    RegId t = b.tid();
    RegId keep = b.iaddi(t, 1);
    workloads::Label skip = b.newLabel();
    RegId p = b.setLt(t, b.movi(8));
    b.braIf(p, skip);
    b.st(keep, b.imuli(t, 4));
    b.bind(skip);
    b.st(keep, b.imuli(t, 4), 8192);
    compiler::CompilerConfig ccfg;
    ccfg.reassignBanks = false;
    compiler::CompiledKernel ck = compiler::compile(b.build(), ccfg);
    regfile::RfHierarchy rfh(ck);
    EXPECT_EQ(rfh.levelOf(keep), regfile::RfLevel::Mrf);
}

TEST(RfhTest, AccessCountsSplitAcrossLevels)
{
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("lud"));
    sim::GpuConfig cfg = sim::GpuConfig::forProvider(sim::ProviderKind::Rfh);
    sim::RunStats stats =
        sim::runKernel(workloads::makeRodinia("lud"), cfg);
    EXPECT_GT(stats.lrfAccesses + stats.orfAccesses, 0u);
    EXPECT_GT(stats.mrfAccesses, 0u);
    // Filtering works: small levels absorb a meaningful share.
    double small = static_cast<double>(stats.lrfAccesses +
                                       stats.orfAccesses);
    double total = small + static_cast<double>(stats.mrfAccesses);
    EXPECT_GT(small / total, 0.2);
}

TEST(RfhTest, MrfSeriesSmallerThanBaselineAccesses)
{
    sim::RunStats base = sim::runKernel(workloads::makeRodinia("nw"),
                                        sim::ProviderKind::Baseline);
    sim::RunStats rfh = sim::runKernel(workloads::makeRodinia("nw"),
                                       sim::ProviderKind::Rfh);
    double base_total = 0, rfh_total = 0;
    for (double v : base.backingSeries)
        base_total += v;
    for (double v : rfh.backingSeries)
        rfh_total += v;
    EXPECT_LT(rfh_total, base_total);
}

TEST(ProviderEnergyTest, OrderingMatchesPaper)
{
    // On a compute benchmark the register-structure energy must order
    // regless < rfh < rfv < baseline.
    auto rf_energy = [](sim::ProviderKind kind) {
        return sim::runKernel(workloads::makeRodinia("srad_v1"), kind)
            .energy.registerStructures();
    };
    double base = rf_energy(sim::ProviderKind::Baseline);
    double rfv = rf_energy(sim::ProviderKind::Rfv);
    double rfh = rf_energy(sim::ProviderKind::Rfh);
    double rl = rf_energy(sim::ProviderKind::Regless);
    EXPECT_LT(rl, rfh);
    EXPECT_LT(rfh, rfv);
    EXPECT_LT(rfv, base);
}

} // namespace
} // namespace regless

namespace regless
{
namespace
{

TEST(BaselineRfTest, CountsBankConflicts)
{
    // imul r, a, a reads the same register twice: same bank.
    regfile::BaselineRf rf(100, 32, /*collector_penalty=*/2);
    arch::Warp warp(0, 0, 64);
    ir::Instruction square(ir::Opcode::IMul, 5, {3, 3});
    EXPECT_EQ(rf.operandDelay(warp, square, 0), 2u);
    EXPECT_EQ(rf.stats().counter("bank_conflicts").value(), 1u);

    // Distinct banks: no conflict.
    ir::Instruction add(ir::Opcode::IAdd, 5, {3, 4});
    EXPECT_EQ(rf.operandDelay(warp, add, 0), 0u);
    // Registers 32 banks apart collide again.
    ir::Instruction far_add(ir::Opcode::IAdd, 5, {3, 35});
    EXPECT_EQ(rf.operandDelay(warp, far_add, 0), 2u);
}

TEST(BaselineRfTest, DefaultCollectorHidesConflicts)
{
    regfile::BaselineRf rf; // penalty 0
    arch::Warp warp(0, 0, 64);
    ir::Instruction square(ir::Opcode::IMul, 5, {3, 3});
    EXPECT_EQ(rf.operandDelay(warp, square, 0), 0u);
    EXPECT_EQ(rf.stats().counter("bank_conflicts").value(), 1u);
}

} // namespace
} // namespace regless
