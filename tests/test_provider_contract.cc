/**
 * @file
 * Provider-registry contract tests (DESIGN.md §13): the registry is
 * complete and self-consistent, every consumer-facing hook is
 * populated, and — parameterized over the registry, so a newly added
 * provider is covered without touching this file — every provider
 * runs real workloads under the existing invariants: the closed stall
 * account, positive energy/area models, and an unchanged program
 * memory image. The two rival designs (compiler-assisted RF cache,
 * RegDem demotion) additionally get unit tests of their compiler pass
 * and spill behaviour, and the v7 cache schema gets a negative test
 * rejecting v6 entries.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/compiler.hh"
#include "compiler/rf_cache_hints.hh"
#include "golden_runs.hh"
#include "mem/memory_system.hh"
#include "regfile/compiler_rf_cache.hh"
#include "regfile/regdem.hh"
#include "sim/experiment.hh"
#include "sim/experiment_engine.hh"
#include "sim/job_cache.hh"
#include "sim/gpu_simulator.hh"
#include "sim/provider_registry.hh"
#include "workloads/kernel_builder.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

using workloads::KernelBuilder;

// ---------------------------------------------------------------------
// Registry self-consistency.
// ---------------------------------------------------------------------

TEST(ProviderRegistry, TableIsInEnumOrderAndComplete)
{
    const auto &registry = sim::providerRegistry();
    ASSERT_EQ(registry.size(), sim::kNumProviderKinds);
    const auto &kinds = sim::allProviderKinds();
    ASSERT_EQ(kinds.size(), sim::kNumProviderKinds);
    for (std::size_t i = 0; i < registry.size(); ++i) {
        EXPECT_EQ(static_cast<std::size_t>(registry[i].kind), i)
            << registry[i].name;
        EXPECT_EQ(kinds[i], registry[i].kind);
        // providerDescriptor() is the indexed lookup of the same row.
        EXPECT_EQ(&sim::providerDescriptor(registry[i].kind),
                  &registry[i]);
    }
}

TEST(ProviderRegistry, NamesAreUniqueAndRoundTrip)
{
    std::set<std::string> names;
    for (const sim::ProviderDescriptor &d : sim::providerRegistry()) {
        EXPECT_TRUE(names.insert(d.name).second)
            << "duplicate provider name " << d.name;
        EXPECT_STREQ(sim::providerName(d.kind), d.name);
        sim::ProviderKind parsed;
        ASSERT_TRUE(sim::tryProviderFromName(d.name, parsed)) << d.name;
        EXPECT_EQ(parsed, d.kind);
        EXPECT_NE(std::string(d.title), "") << d.name;
    }
    sim::ProviderKind parsed;
    EXPECT_FALSE(sim::tryProviderFromName("no_such_provider", parsed));
}

TEST(ProviderRegistry, EveryMandatoryHookIsPopulated)
{
    for (const sim::ProviderDescriptor &d : sim::providerRegistry()) {
        EXPECT_NE(d.make, nullptr) << d.name;
        EXPECT_NE(d.collect, nullptr) << d.name;
        EXPECT_NE(d.registerEnergy, nullptr) << d.name;
        EXPECT_NE(d.area, nullptr) << d.name;
    }
}

TEST(ProviderRegistry, ForProviderAppliesTheDescriptorDefaults)
{
    for (const sim::ProviderDescriptor &d : sim::providerRegistry()) {
        const sim::GpuConfig cfg = sim::GpuConfig::forProvider(d.kind);
        EXPECT_EQ(cfg.provider, d.kind) << d.name;
        EXPECT_EQ(cfg.sm.scheduler, d.scheduler) << d.name;
    }
}

TEST(ProviderRegistry, AreaModelIsPositiveForEveryProvider)
{
    for (const sim::ProviderDescriptor &d : sim::providerRegistry()) {
        const sim::GpuConfig cfg = sim::GpuConfig::forProvider(d.kind);
        EXPECT_GT(d.area(cfg).total(), 0.0) << d.name;
    }
}

// ---------------------------------------------------------------------
// Every provider end-to-end, parameterized over the registry.
// ---------------------------------------------------------------------

/** gtest param names must be [A-Za-z0-9_]. */
std::string
kindParamName(const ::testing::TestParamInfo<sim::ProviderKind> &info)
{
    return sim::providerName(info.param);
}

class ProviderContract : public ::testing::TestWithParam<sim::ProviderKind>
{
};

TEST_P(ProviderContract, RodiniaRunClosesTheStallAccount)
{
    const sim::ProviderKind kind = GetParam();
    for (const char *name : {"nn", "hotspot"}) {
        const sim::GpuConfig cfg = sim::GpuConfig::forProvider(kind);
        const sim::RunStats stats =
            sim::runKernel(workloads::makeRodinia(name), cfg);
        EXPECT_EQ(stats.provider, kind) << name;
        EXPECT_GT(stats.cycles, 0u) << name;
        testutil::expectSlotInvariant(
            stats, cfg.sm.numSchedulers,
            std::string(name) + " " + sim::providerName(kind));
        // The registry's energy hook ran: the model is total and
        // positive for every design.
        EXPECT_GT(stats.energy.total(), 0.0) << name;
    }
}

TEST_P(ProviderContract, ProgramMemoryImageMatchesBaseline)
{
    // Operand staging is invisible to the program: whatever the
    // provider does (cache, demote, compress), the data the kernel
    // writes must be byte-identical to the baseline run's.
    const sim::ProviderKind kind = GetParam();
    const sim::GpuConfig base_cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    const sim::GpuConfig cfg = sim::GpuConfig::forProvider(kind);
    sim::GpuSimulator base(workloads::makeRodinia("hotspot"), base_cfg);
    sim::GpuSimulator sut(workloads::makeRodinia("hotspot"), cfg);
    base.run();
    sut.run();
    for (Addr off = 0; off < (1u << 19); off += 4 * 257) {
        const Addr a = base_cfg.sm.dataBase + off;
        ASSERT_EQ(base.memory().readWord(a), sut.memory().readWord(a))
            << "offset " << off;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProviders, ProviderContract,
    ::testing::ValuesIn(sim::allProviderKinds()), kindParamName);

// ---------------------------------------------------------------------
// Compiler-assisted RF cache (DESIGN.md §13.2).
// ---------------------------------------------------------------------

TEST(RfCacheHints, ShortLivedSameBlockValueIsCacheable)
{
    KernelBuilder b("short");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId x = b.iaddi(t, 1); // consumed by the very next instruction
    RegId y = b.imul(x, x);
    b.st(y, addr);
    const ir::Kernel kernel = b.build();
    const std::vector<bool> cacheable =
        compiler::rfCacheableRegs(kernel, compiler::RfCacheHintParams{});
    EXPECT_TRUE(cacheable.at(x));
    EXPECT_TRUE(cacheable.at(y));
}

TEST(RfCacheHints, CrossBlockValueIsNotCacheable)
{
    // `keep` is defined before a branch and used on both sides: it is
    // live out of its defining block, so caching it would leave the
    // backing file stale across the seam.
    KernelBuilder b("crossblock");
    RegId t = b.tid();
    RegId keep = b.iaddi(t, 1);
    workloads::Label skip = b.newLabel();
    RegId p = b.setLt(t, b.movi(8));
    b.braIf(p, skip);
    b.st(keep, b.imuli(t, 4));
    b.bind(skip);
    b.st(keep, b.imuli(t, 4), 8192);
    const ir::Kernel kernel = b.build();
    const std::vector<bool> cacheable =
        compiler::rfCacheableRegs(kernel, compiler::RfCacheHintParams{});
    EXPECT_FALSE(cacheable.at(keep));
}

TEST(RfCacheHints, DistantUseIsNotCacheable)
{
    // A tight distance knob rejects the same value a loose one keeps.
    KernelBuilder b("distant");
    RegId t = b.tid();
    RegId x = b.iaddi(t, 1);
    for (int i = 0; i < 6; ++i)
        t = b.iaddi(t, 1); // filler between def and last use
    b.st(x, b.imuli(t, 4));
    const ir::Kernel kernel = b.build();
    compiler::RfCacheHintParams tight;
    tight.maxDefUseDistance = 2;
    compiler::RfCacheHintParams loose;
    loose.maxDefUseDistance = 32;
    EXPECT_FALSE(compiler::rfCacheableRegs(kernel, tight).at(x));
    EXPECT_TRUE(compiler::rfCacheableRegs(kernel, loose).at(x));
}

TEST(CompilerRfCacheTest, HitsShortLivedValuesEndToEnd)
{
    const sim::RunStats stats =
        sim::runKernel(workloads::makeRodinia("hotspot"),
                       sim::ProviderKind::CompilerRfCache);
    // The cache absorbs accesses (hits) and the uncached/evicted rest
    // still reaches the backing file.
    EXPECT_GT(stats.rfCacheHits, 0u);
    EXPECT_GT(stats.rfReads + stats.rfWrites, 0u);
}

TEST(CompilerRfCacheTest, TinyCacheEvictsAndMisses)
{
    compiler::CompiledKernel ck =
        compiler::compile(workloads::makeRodinia("hotspot"));
    regfile::CompilerRfCache::Params params;
    params.cacheEntriesPerWarp = 1; // every second insert evicts
    regfile::CompilerRfCache cache(ck, params);
    arch::Warp warp(0, 0, ck.kernel().numRegs());
    for (Pc pc = 0; pc < ck.kernel().numInsns(); ++pc) {
        const ir::Instruction &insn = ck.kernel().insn(pc);
        cache.onIssue(warp, pc, insn, pc, pc + 1);
        if (!insn.isExit())
            warp.stack().advance();
    }
    EXPECT_GT(cache.stats().counter("evictions").value(), 0u);
    EXPECT_GT(cache.stats().counter("cache_misses").value(), 0u);
}

// ---------------------------------------------------------------------
// RegDem demotion (DESIGN.md §13.3).
// ---------------------------------------------------------------------

/** A kernel with far more live registers than RegDem's shrunken RF. */
ir::Kernel
wideKernel()
{
    KernelBuilder b("wide");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    std::vector<RegId> vals;
    for (int i = 0; i < 24; ++i)
        vals.push_back(b.iaddi(t, i + 2)); // all live until the sum
    RegId acc = b.iaddi(t, 1);
    for (RegId v : vals)
        acc = b.iadd(acc, v);
    b.st(acc, addr);
    return b.build();
}

TEST(RegDemTest, DemotesAllButTheHottestRegisters)
{
    compiler::CompiledKernel ck = compiler::compile(wideKernel());
    ASSERT_GT(ck.kernel().numRegs(), 16u);
    mem::MemorySystem mem;
    regfile::RegDemProvider::Params params; // hotRegsPerWarp = 16
    regfile::RegDemProvider regdem(ck, mem, params);
    EXPECT_EQ(regdem.hotRegs(), 16u);
    unsigned demoted = 0;
    for (RegId r = 0; r < ck.kernel().numRegs(); ++r)
        demoted += regdem.demoted(r) ? 1 : 0;
    EXPECT_EQ(demoted, ck.kernel().numRegs() - 16u);
}

TEST(RegDemTest, SmallKernelDemotesNothing)
{
    KernelBuilder b("small");
    RegId t = b.tid();
    b.st(b.iaddi(t, 1), b.imuli(t, 4));
    compiler::CompiledKernel ck = compiler::compile(b.build());
    ASSERT_LE(ck.kernel().numRegs(), 16u);
    mem::MemorySystem mem;
    regfile::RegDemProvider regdem(ck, mem,
                                   regfile::RegDemProvider::Params{});
    for (RegId r = 0; r < ck.kernel().numRegs(); ++r)
        EXPECT_FALSE(regdem.demoted(r)) << "r" << r;
}

TEST(RegDemTest, SpillTrafficIsRealMemoryTraffic)
{
    const sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::RegDem);
    const sim::RunStats stats = sim::runKernel(wideKernel(), cfg);
    // Demoted registers really move through the memory system: every
    // demoted read is a fill load, every demoted write a spill store.
    EXPECT_GT(stats.fillLoads, 0u);
    EXPECT_GT(stats.spillStores, 0u);
    // And the traffic shows up against the baseline's L1 counters.
    const sim::RunStats base = sim::runKernel(
        wideKernel(),
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline));
    EXPECT_GT(stats.l1Accesses, base.l1Accesses);
}

// ---------------------------------------------------------------------
// Cache schema (negative test: previous-version entries are stale).
// ---------------------------------------------------------------------

TEST(CacheSchema, PreviousSchemaEntriesAreRejected)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) /
        "regless-schema-stale";
    std::filesystem::remove_all(dir);
    sim::ExperimentEngine::Options options;
    options.cacheDir = dir.string();

    const sim::SimJob job = {
        "wide", sim::GpuConfig::forProvider(sim::ProviderKind::Regless),
        0, wideKernel};
    sim::RunStats reference;
    {
        sim::ExperimentEngine engine(options);
        reference = engine.stats(engine.submit(job));
        EXPECT_EQ(engine.simulated(), 1u);
    }
    const auto path =
        dir / sim::ExperimentEngine::cacheEntryPath(job);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Downgrade the entry's schema stamp in place (the file name
    // stays valid, so only the record-level check can reject it).
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }
    const std::size_t key = text.find("record_schema");
    ASSERT_NE(key, std::string::npos);
    const std::size_t digit =
        text.find_first_of("0123456789", key);
    ASSERT_NE(digit, std::string::npos);
    const std::size_t end =
        text.find_first_not_of("0123456789", digit);
    ASSERT_EQ(text.substr(digit, end - digit),
              std::to_string(sim::kJobCacheSchemaVersion));
    text.replace(digit, end - digit,
                 std::to_string(sim::kJobCacheSchemaVersion - 1));
    std::ofstream(path, std::ios::binary | std::ios::trunc) << text;

    // A stale entry is a miss, the job re-simulates, the entry heals.
    {
        sim::ExperimentEngine engine(options);
        const sim::RunStats &stats = engine.stats(engine.submit(job));
        EXPECT_EQ(engine.cacheHits(), 0u);
        EXPECT_EQ(engine.simulated(), 1u);
        EXPECT_TRUE(stats == reference);
    }
    {
        sim::ExperimentEngine engine(options);
        engine.submit(job);
        engine.flush();
        EXPECT_EQ(engine.cacheHits(), 1u);
    }
}

} // namespace
} // namespace regless
