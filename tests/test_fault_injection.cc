/**
 * @file
 * Fault-injection and fault-isolation coverage (DESIGN.md §9): every
 * injected fault class provokes its failure deterministically, the
 * forward-progress watchdog terminates hangs within its window with a
 * populated DeadlockReport, a crashing job never disturbs its
 * siblings, transient faults are retried exactly once, and failures
 * are negative-cached through the JobRecord JSON round trip.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/sim_error.hh"
#include "sim/experiment_engine.hh"
#include "sim/gpu_simulator.hh"
#include "sim/multi_sm.hh"
#include "sim/progress_monitor.hh"
#include "sim/stats_io.hh"
#include "workloads/kernel_builder.hh"
#include "workloads/random_kernel.hh"

namespace regless
{
namespace
{

/** A few-instruction kernel so fault tests simulate in microseconds. */
ir::Kernel
tinyKernel()
{
    workloads::KernelBuilder b("tiny");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId v = b.ld(addr);
    b.st(b.iadd(v, t), addr, 1 << 22);
    return b.build();
}

sim::SimJob
tinyJob(sim::ProviderKind kind)
{
    return {"tiny", sim::GpuConfig::forProvider(kind), 0, tinyKernel};
}

/**
 * A RegLess config whose fault plan leaks every OSU reservation at
 * cycle 0, so no region ever fits and the watchdog must fire. The
 * window is tight to keep tests fast; maxCycles is a backstop that
 * must never be the verdict (the stall check fires much earlier).
 */
sim::GpuConfig
leakyConfig(Cycle window = 5000)
{
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Regless);
    cfg.faults.kind = FaultPlan::Kind::LeakOsuSlot;
    cfg.faults.triggerCycle = 0;
    cfg.sm.watchdogWindow = window;
    cfg.sm.maxCycles = 2'000'000;
    return cfg;
}

std::filesystem::path
freshCacheDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) /
        ("regless-faults-" + name);
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(Watchdog, OsuLeakDeadlockTripsWithinOneWindow)
{
    const ir::Kernel kernel = workloads::randomKernel(1);
    const sim::GpuConfig cfg = leakyConfig();
    sim::GpuSimulator gpu(kernel, cfg);
    try {
        gpu.run();
        FAIL() << "leaked OSU reservations did not deadlock";
    } catch (const sim::DeadlockError &e) {
        const sim::DeadlockReport &r = e.report();
        EXPECT_EQ(r.reason,
                  sim::ProgressMonitor::reason(
                      sim::ProgressMonitor::Verdict::Stalled));
        EXPECT_EQ(r.kernel, kernel.name());
        EXPECT_EQ(r.watchdogWindow, cfg.sm.watchdogWindow);
        // Terminates within the window of the last progress (plus the
        // check granularity), not at the multi-million-cycle budget.
        EXPECT_GE(r.cycle, r.lastProgressCycle + r.watchdogWindow);
        EXPECT_LE(r.cycle, r.lastProgressCycle + r.watchdogWindow + 64);
        // The diagnosis names the structures that pin the warps.
        ASSERT_FALSE(r.warps.empty());
        EXPECT_NE(r.warps.front().find("cm="), std::string::npos);
        ASSERT_FALSE(r.banks.empty());
        EXPECT_NE(r.banks.front().find("reserved="), std::string::npos);
        EXPECT_NE(r.memState.find("MSHR"), std::string::npos);
        // The leak itself is visible: some bank carries phantom
        // reservations that will never be honoured.
        bool leaked = false;
        for (const std::string &line : r.banks)
            leaked = leaked ||
                     (line.find("reserved=") != std::string::npos &&
                      line.find("reserved=0") == std::string::npos);
        EXPECT_TRUE(leaked) << e.report().render();
    }
}

TEST(Watchdog, DroppedDramResponseWedgesTheRun)
{
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    cfg.faults.kind = FaultPlan::Kind::DropDramResponse;
    cfg.faults.triggerCycle = 0;
    cfg.sm.watchdogWindow = 10'000;
    sim::GpuSimulator gpu(tinyKernel(), cfg);
    try {
        gpu.run();
        FAIL() << "dropped DRAM response did not wedge the run";
    } catch (const sim::DeadlockError &e) {
        EXPECT_EQ(e.report().reason,
                  sim::ProgressMonitor::reason(
                      sim::ProgressMonitor::Verdict::Stalled));
        EXPECT_FALSE(e.report().warps.empty());
    }
}

TEST(Watchdog, CycleBudgetTripsAsItsOwnVerdict)
{
    sim::GpuConfig cfg =
        sim::GpuConfig::forProvider(sim::ProviderKind::Baseline);
    cfg.sm.maxCycles = 50; // healthy kernel, absurdly small budget
    sim::GpuSimulator gpu(tinyKernel(), cfg);
    try {
        gpu.run();
        FAIL() << "a 50-cycle budget was not exceeded";
    } catch (const sim::DeadlockError &e) {
        EXPECT_EQ(e.report().reason,
                  sim::ProgressMonitor::reason(
                      sim::ProgressMonitor::Verdict::CycleBudget));
        EXPECT_EQ(e.report().maxCycles, 50u);
    }
}

TEST(Watchdog, MultiSmRunIsCoveredToo)
{
    const ir::Kernel kernel = workloads::randomKernel(1);
    sim::MultiSmSimulator multi(kernel, leakyConfig(), /*sms=*/2,
                                /*threads=*/1);
    EXPECT_THROW(multi.run(), sim::DeadlockError);
}

TEST(FaultIsolation, CrashedJobLeavesSiblingsByteIdentical)
{
    // The same healthy grid, with and without a crashing job in the
    // middle, serial and parallel: the healthy results must be
    // bit-identical in all four runs.
    auto runWith = [](unsigned jobs, bool doomed) {
        sim::ExperimentEngine::Options options;
        options.jobs = jobs;
        options.retryBackoffMs = 0;
        sim::ExperimentEngine engine(options);
        engine.submit(tinyJob(sim::ProviderKind::Baseline));
        engine.submit(tinyJob(sim::ProviderKind::Rfv));
        if (doomed) {
            sim::SimJob job = tinyJob(sim::ProviderKind::Regless);
            job.kernel = "doomed";
            job.config.faults.kind = FaultPlan::Kind::ProviderThrow;
            job.config.faults.triggerCycle = 5;
            engine.submit(job);
        }
        engine.submit(tinyJob(sim::ProviderKind::Rfh));
        engine.submit(tinyJob(sim::ProviderKind::Regless));
        std::vector<sim::RunStats> stats = engine.allStats();
        EXPECT_EQ(engine.failed(), doomed ? 1u : 0u);
        return stats;
    };
    const std::vector<sim::RunStats> clean = runWith(1, false);
    ASSERT_EQ(clean.size(), 4u);
    for (unsigned jobs : {1u, 8u}) {
        const std::vector<sim::RunStats> faulted = runWith(jobs, true);
        ASSERT_EQ(faulted.size(), clean.size())
            << "--jobs " << jobs
            << ": crashed job leaked into allStats()";
        for (std::size_t i = 0; i < clean.size(); ++i)
            EXPECT_TRUE(clean[i] == faulted[i])
                << "--jobs " << jobs << ", sibling " << i;
    }
}

TEST(FaultIsolation, ProviderThrowIsCapturedWithDiagnosis)
{
    sim::ExperimentEngine::Options options;
    options.retryBackoffMs = 0;
    sim::ExperimentEngine engine(options);
    sim::SimJob job = tinyJob(sim::ProviderKind::Regless);
    job.kernel = "doomed";
    job.config.faults.kind = FaultPlan::Kind::ProviderThrow;
    job.config.faults.triggerCycle = 5;
    auto id = engine.submit(job);

    const sim::JobResult &result = engine.result(id);
    EXPECT_EQ(result.status, sim::JobStatus::Failed);
    EXPECT_NE(result.error.find("injected"), std::string::npos);
    // A persistent fault is retried once (it could have been
    // environmental) and fails again.
    EXPECT_EQ(result.attempts, 2u);
    EXPECT_THROW(engine.stats(id), sim::SimError);
    EXPECT_EQ(engine.tryStats(id), nullptr);
    EXPECT_EQ(engine.failedJobs(), std::vector<sim::ExperimentEngine::JobId>{id});
}

TEST(FaultIsolation, TransientFaultRetriesOnceAndSucceeds)
{
    sim::ExperimentEngine::Options options;
    options.retryBackoffMs = 0;
    sim::ExperimentEngine engine(options);

    sim::SimJob transient = tinyJob(sim::ProviderKind::Regless);
    transient.kernel = "transient";
    transient.config.faults.kind = FaultPlan::Kind::ProviderThrow;
    transient.config.faults.triggerCycle = 5;
    transient.config.faults.transient = true;
    auto id = engine.submit(transient);
    auto clean_id = engine.submit(tinyJob(sim::ProviderKind::Regless));

    const sim::JobResult &result = engine.result(id);
    EXPECT_EQ(result.status, sim::JobStatus::Ok);
    EXPECT_EQ(result.attempts, 2u) << result.error;
    EXPECT_EQ(engine.retried(), 1u);
    EXPECT_EQ(engine.failed(), 0u);
    // The retry ran clean, so it must reproduce the fault-free result.
    EXPECT_TRUE(result.stats == engine.stats(clean_id));
}

TEST(FaultIsolation, DeadlockIsNeverRetried)
{
    sim::ExperimentEngine::Options options;
    options.retries = 3;
    options.retryBackoffMs = 0;
    sim::ExperimentEngine engine(options);
    sim::SimJob job{"doomed", leakyConfig(), 0,
                    [] { return workloads::randomKernel(1); }};
    auto id = engine.submit(job);

    const sim::JobResult &result = engine.result(id);
    EXPECT_EQ(result.status, sim::JobStatus::Deadlocked);
    // Deterministic in the cycle domain: retrying cannot help.
    EXPECT_EQ(result.attempts, 1u);
    EXPECT_EQ(engine.deadlocked(), 1u);
    EXPECT_NE(result.deadlock.find("OSU banks"), std::string::npos);
}

TEST(FaultIsolation, DeadlockIsNegativeCachedAndServedAsAHit)
{
    const auto dir = freshCacheDir("negative");
    sim::ExperimentEngine::Options options;
    options.cacheDir = dir.string();
    options.retryBackoffMs = 0;
    const sim::SimJob job{"doomed", leakyConfig(), 0,
                          [] { return workloads::randomKernel(1); }};

    std::string first_diagnosis;
    {
        sim::ExperimentEngine cold(options);
        const sim::JobResult &result = cold.result(cold.submit(job));
        EXPECT_EQ(result.status, sim::JobStatus::Deadlocked);
        EXPECT_EQ(cold.simulated(), 1u);
        first_diagnosis = result.deadlock;
        ASSERT_FALSE(first_diagnosis.empty());
    }
    // A warm rerun never re-executes the known-bad point, and the
    // cached diagnosis survives the JSON round trip byte for byte.
    sim::ExperimentEngine warm(options);
    const sim::JobResult &result = warm.result(warm.submit(job));
    EXPECT_EQ(warm.simulated(), 0u);
    EXPECT_EQ(warm.cacheHits(), 1u);
    EXPECT_EQ(result.status, sim::JobStatus::Deadlocked);
    EXPECT_EQ(result.deadlock, first_diagnosis);
    EXPECT_EQ(result.attempts, 1u);
}

TEST(JobRecordJson, FailureRecordsRoundTrip)
{
    sim::JobRecord record;
    record.schema = 4;
    record.status = sim::JobStatus::Deadlocked;
    record.error = "kernel 'x' made no forward progress";
    record.deadlock = "deadlock: kernel 'x'\n  w0: running pc=3\n"
                      "  osu0.b0: 0/0/0/16, reserved=16";
    record.attempts = 3;
    record.stats.cycles = 123;

    std::ostringstream os;
    sim::writeJson(os, record);
    sim::JobRecord back;
    std::string error;
    ASSERT_TRUE(sim::tryRecordFromJson(os.str(), back, &error))
        << error;
    EXPECT_EQ(back.schema, record.schema);
    EXPECT_EQ(back.status, record.status);
    EXPECT_EQ(back.error, record.error);
    EXPECT_EQ(back.deadlock, record.deadlock);
    EXPECT_EQ(back.attempts, record.attempts);
    EXPECT_EQ(back.stats.cycles, record.stats.cycles);
}

TEST(JobRecordJson, BarePreWatchdogRunStatsAreRejected)
{
    // A cache entry written before records existed is a bare RunStats
    // object; it must read as a miss, not as a successful record.
    sim::RunStats stats;
    stats.cycles = 99;
    std::ostringstream os;
    sim::writeJson(os, stats);
    sim::JobRecord out;
    std::string error;
    EXPECT_FALSE(sim::tryRecordFromJson(os.str(), out, &error));
    EXPECT_NE(error.find("record"), std::string::npos);
}

TEST(FaultInjector, FiresExactlyOnceAtTheTrigger)
{
    FaultInjector injector({FaultPlan::Kind::LeakOsuSlot, 100, false});
    EXPECT_FALSE(injector.fire(FaultPlan::Kind::LeakOsuSlot, 99));
    // The wrong kind never consumes the plan.
    EXPECT_FALSE(injector.fire(FaultPlan::Kind::ProviderThrow, 100));
    EXPECT_FALSE(injector.fired());
    EXPECT_TRUE(injector.fire(FaultPlan::Kind::LeakOsuSlot, 100));
    EXPECT_TRUE(injector.fired());
    EXPECT_FALSE(injector.fire(FaultPlan::Kind::LeakOsuSlot, 101));
}

TEST(EngineOptions, MaxCyclesIsPartOfTheFingerprint)
{
    // The engine-wide budget is folded into each job before its cache
    // key is computed, so entries simulated under different budgets
    // never collide.
    sim::SimJob job = tinyJob(sim::ProviderKind::Baseline);
    const std::string plain = sim::ExperimentEngine::cacheFileName(job);
    sim::ExperimentEngine::Options options;
    options.maxCycles = 10;
    sim::ExperimentEngine engine(options);
    engine.submit(job);
    sim::SimJob budgeted = job;
    budgeted.config.sm.maxCycles = 10;
    EXPECT_NE(plain, sim::ExperimentEngine::cacheFileName(budgeted));
    // And the budget actually bites: ten cycles is far too few.
    EXPECT_EQ(engine.result(0).status, sim::JobStatus::Deadlocked);
}

} // namespace
} // namespace regless
