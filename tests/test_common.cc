/**
 * @file
 * Unit tests for the common module: stats, RNG, logging helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/rng.hh"
#include "common/stats.hh"

namespace regless
{
namespace
{

TEST(CounterTest, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c++;
    c += 5;
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(DistributionTest, EmptyDistributionIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(DistributionTest, TracksMomentsExactly)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    // Known population stddev of this classic dataset is 2.
    EXPECT_NEAR(d.stddev(), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
}

TEST(DistributionTest, SingleSample)
{
    Distribution d;
    d.sample(42.0);
    EXPECT_DOUBLE_EQ(d.mean(), 42.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 42.0);
    EXPECT_DOUBLE_EQ(d.max(), 42.0);
}

TEST(DistributionTest, NegativeValues)
{
    Distribution d;
    d.sample(-3.0);
    d.sample(3.0);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), -3.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_NEAR(d.stddev(), 3.0, 1e-12);
}

TEST(WindowedSeriesTest, AccumulatesWithinWindow)
{
    WindowedSeries s(100);
    s.record(10, 1.0);
    s.record(50, 2.0);
    s.record(99, 3.0);
    s.flush();
    ASSERT_EQ(s.points().size(), 1u);
    EXPECT_DOUBLE_EQ(s.points()[0], 6.0);
}

TEST(WindowedSeriesTest, SplitsAcrossWindows)
{
    WindowedSeries s(100);
    s.record(10, 1.0);
    s.record(150, 2.0);
    s.record(420, 4.0);
    s.flush();
    // Windows: [0,100) = 1, [100,200) = 2, [200,300) = 0,
    // [300,400) = 0, [400,500) = 4.
    ASSERT_EQ(s.points().size(), 5u);
    EXPECT_DOUBLE_EQ(s.points()[0], 1.0);
    EXPECT_DOUBLE_EQ(s.points()[1], 2.0);
    EXPECT_DOUBLE_EQ(s.points()[2], 0.0);
    EXPECT_DOUBLE_EQ(s.points()[3], 0.0);
    EXPECT_DOUBLE_EQ(s.points()[4], 4.0);
    EXPECT_DOUBLE_EQ(s.meanPerWindow(), 7.0 / 5.0);
}

TEST(WindowedSeriesTest, FirstRecordNotInWindowZero)
{
    WindowedSeries s(100);
    s.record(250, 5.0);
    s.flush();
    ASSERT_EQ(s.points().size(), 1u);
    EXPECT_DOUBLE_EQ(s.points()[0], 5.0);
}

TEST(StatGroupTest, DumpContainsAllStats)
{
    StatGroup group("osu");
    group.counter("hits") += 3;
    group.distribution("occupancy").sample(1.5);
    std::ostringstream oss;
    group.dump(oss);
    std::string text = oss.str();
    EXPECT_NE(text.find("osu.hits 3"), std::string::npos);
    EXPECT_NE(text.find("osu.occupancy.mean 1.5"), std::string::npos);
}

TEST(StatGroupTest, CounterIsStableAcrossLookups)
{
    StatGroup group("g");
    Counter &a = group.counter("x");
    ++a;
    EXPECT_EQ(group.counter("x").value(), 1u);
}

TEST(GeomeanTest, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({7.0}), 7.0);
}

TEST(RngTest, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= (a.next() != b.next());
    EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(13), 13u);
}

TEST(RngTest, NextBelowCoversAllResidues)
{
    Rng r(99);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextRangeInclusive)
{
    Rng r(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        std::int64_t v = r.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, ChanceExtremes)
{
    Rng r(3);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    // Empirical mid-probability check.
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.chance(0.5);
    EXPECT_NEAR(hits, 5000, 300);
}

} // namespace
} // namespace regless
