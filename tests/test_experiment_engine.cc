/**
 * @file
 * ExperimentEngine coverage: the config fingerprint reacts to every
 * top-level GpuConfig field, duplicate submissions collapse onto one
 * job, the on-disk cache hits on identical configs and misses on any
 * change or corruption, and results are identical for every worker
 * count.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "figures/figures.hh"
#include "sim/experiment_engine.hh"
#include "workloads/kernel_builder.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

/** A few-instruction kernel so engine tests simulate in microseconds. */
ir::Kernel
tinyKernel()
{
    workloads::KernelBuilder b("tiny");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId v = b.ld(addr);
    b.st(b.iadd(v, t), addr, 1 << 22);
    return b.build();
}

sim::SimJob
tinyJob(sim::ProviderKind kind)
{
    return {"tiny", sim::GpuConfig::forProvider(kind), 0, tinyKernel};
}

/** Fresh per-test cache directory under the gtest temp root. */
std::filesystem::path
freshCacheDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) /
        ("regless-engine-" + name);
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(ConfigFingerprint, EveryTopLevelFieldChangesIt)
{
    const sim::GpuConfig base;
    std::set<std::uint64_t> seen{sim::configFingerprint(base)};

    // One mutation per top-level GpuConfig field; each must produce a
    // fingerprint distinct from the default and from all the others.
    const std::vector<void (*)(sim::GpuConfig &)> mutations = {
        [](sim::GpuConfig &c) { c.provider = sim::ProviderKind::Rfv; },
        [](sim::GpuConfig &c) { c.sm.numWarps += 1; },
        [](sim::GpuConfig &c) { c.mem.l1.sizeBytes *= 2; },
        [](sim::GpuConfig &c) { c.compiler.maxRegsPerRegion += 1; },
        [](sim::GpuConfig &c) { c.regless.osuEntriesPerSm += 128; },
        [](sim::GpuConfig &c) { c.energy.l1Access += 1.0; },
        [](sim::GpuConfig &c) { c.area.compressorArea += 0.01; },
        [](sim::GpuConfig &c) { c.baselineRfEntries += 1; },
        [](sim::GpuConfig &c) { c.limitOccupancyByRf = true; },
        [](sim::GpuConfig &c) { c.rfvPhysEntries += 1; },
        [](sim::GpuConfig &c) { c.rfh.orfEntriesPerWarp += 1; },
        [](sim::GpuConfig &c) {
            c.faults.kind = FaultPlan::Kind::LeakOsuSlot;
        },
    };
    for (auto mutate : mutations) {
        sim::GpuConfig config;
        mutate(config);
        auto [it, inserted] =
            seen.insert(sim::configFingerprint(config));
        (void)it;
        EXPECT_TRUE(inserted)
            << "mutation #" << seen.size()
            << " did not change the fingerprint";
    }
}

TEST(ConfigFingerprint, CanonicalTextNamesEveryTopLevelField)
{
    const std::string text =
        sim::configCanonicalText(sim::GpuConfig{});
    for (const char *needle :
         {"provider=", "sm.", "mem.", "compiler.", "regless.",
          "energy.", "area.", "baseline_rf_entries=",
          "limit_occupancy_by_rf=", "rfv_phys_entries=", "rfh.",
          "faults.", "sm.watchdog_window=", "sm.max_cycles="}) {
        EXPECT_NE(text.find(needle), std::string::npos)
            << "canonical dump is missing " << needle;
    }
}

TEST(ExperimentEngine, DuplicateSubmissionsCollapse)
{
    sim::ExperimentEngine engine;
    auto a = engine.submit(tinyJob(sim::ProviderKind::Baseline));
    auto b = engine.submit(tinyJob(sim::ProviderKind::Baseline));
    EXPECT_EQ(a, b);
    EXPECT_EQ(engine.pointsRequested(), 2u);
    EXPECT_EQ(engine.pointsUnique(), 1u);
    engine.flush();
    EXPECT_EQ(engine.simulated(), 1u);
}

TEST(ExperimentEngine, SmsCountIsPartOfTheJobKey)
{
    sim::ExperimentEngine engine;
    sim::SimJob solo = tinyJob(sim::ProviderKind::Baseline);
    sim::SimJob multi = solo;
    multi.sms = 1; // multi-SM executor, not the standalone SM
    EXPECT_NE(engine.submit(solo), engine.submit(multi));
    EXPECT_EQ(engine.pointsUnique(), 2u);
}

TEST(ExperimentEngine, WarmCacheRerunSimulatesNothing)
{
    const auto dir = freshCacheDir("warm");
    sim::ExperimentEngine::Options options;
    options.cacheDir = dir.string();

    sim::ExperimentEngine cold(options);
    auto id = cold.submit(tinyJob(sim::ProviderKind::Regless));
    const sim::RunStats first = cold.stats(id);
    EXPECT_EQ(cold.simulated(), 1u);
    EXPECT_EQ(cold.cacheHits(), 0u);

    sim::ExperimentEngine warm(options);
    auto id2 = warm.submit(tinyJob(sim::ProviderKind::Regless));
    const sim::RunStats &second = warm.stats(id2);
    EXPECT_EQ(warm.simulated(), 0u);
    EXPECT_EQ(warm.cacheHits(), 1u);
    EXPECT_TRUE(first == second);
}

TEST(ExperimentEngine, AnyConfigFieldChangeMissesTheCache)
{
    const auto dir = freshCacheDir("field-miss");
    sim::ExperimentEngine::Options options;
    options.cacheDir = dir.string();

    {
        sim::ExperimentEngine engine(options);
        engine.submit(tinyJob(sim::ProviderKind::Regless));
        engine.flush();
        EXPECT_EQ(engine.simulated(), 1u);
    }
    // A one-field change in a nested config must re-simulate.
    sim::SimJob changed = tinyJob(sim::ProviderKind::Regless);
    changed.config.mem.dram.accessLatency += 1;
    sim::ExperimentEngine engine(options);
    engine.submit(changed);
    engine.flush();
    EXPECT_EQ(engine.cacheHits(), 0u);
    EXPECT_EQ(engine.simulated(), 1u);
}

TEST(ExperimentEngine, CorruptCacheEntryIsToleratedAsAMiss)
{
    const auto dir = freshCacheDir("corrupt");
    sim::ExperimentEngine::Options options;
    options.cacheDir = dir.string();

    const sim::SimJob job = tinyJob(sim::ProviderKind::Regless);
    sim::RunStats reference;
    {
        sim::ExperimentEngine engine(options);
        reference = engine.stats(engine.submit(job));
    }
    const auto path =
        dir / sim::ExperimentEngine::cacheEntryPath(job);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Garbage content: re-simulated, and the entry heals.
    {
        std::ofstream(path, std::ios::trunc) << "{not json";
        sim::ExperimentEngine engine(options);
        const sim::RunStats &stats = engine.stats(engine.submit(job));
        EXPECT_EQ(engine.cacheHits(), 0u);
        EXPECT_EQ(engine.simulated(), 1u);
        EXPECT_TRUE(stats == reference);
    }
    // Healed entry hits again.
    {
        sim::ExperimentEngine engine(options);
        engine.submit(job);
        engine.flush();
        EXPECT_EQ(engine.cacheHits(), 1u);
    }
    // Truncation (half of a valid entry) is also just a miss.
    {
        std::ifstream in(path);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        in.close();
        const std::string full = buffer.str();
        std::ofstream(path, std::ios::trunc)
            << full.substr(0, full.size() / 2);
        sim::ExperimentEngine engine(options);
        const sim::RunStats &stats = engine.stats(engine.submit(job));
        EXPECT_EQ(engine.cacheHits(), 0u);
        EXPECT_EQ(engine.simulated(), 1u);
        EXPECT_TRUE(stats == reference);
    }
}

TEST(ExperimentEngine, ResultsAreWorkerCountInvariant)
{
    auto runWith = [](unsigned jobs) {
        sim::ExperimentEngine::Options options;
        options.jobs = jobs;
        sim::ExperimentEngine engine(options);
        for (sim::ProviderKind kind :
             {sim::ProviderKind::Baseline, sim::ProviderKind::Rfh,
              sim::ProviderKind::Rfv, sim::ProviderKind::Regless})
            engine.submit(tinyJob(kind));
        engine.submit("nn", sim::ProviderKind::Regless);
        return engine.allStats();
    };
    const std::vector<sim::RunStats> serial = runWith(1);
    const std::vector<sim::RunStats> parallel = runWith(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_TRUE(serial[i] == parallel[i]) << "job " << i;
}

TEST(ExperimentEngine, LintGateRunsOncePerKernelAndConfig)
{
    sim::ExperimentEngine::Options options;
    options.lint = true;
    sim::ExperimentEngine engine(options);

    // Same kernel under two providers with identical compiler configs:
    // one lint. Runtime-only parameter changes must not re-lint.
    engine.submit(tinyJob(sim::ProviderKind::Baseline));
    sim::SimJob rl = tinyJob(sim::ProviderKind::Regless);
    rl.config.regless.fifoActivation = true;
    engine.submit(rl);
    engine.flush();
    EXPECT_EQ(engine.kernelsLinted(), 1u);

    // A different kernel is a new lint.
    engine.submit("nn", sim::ProviderKind::Regless);
    engine.flush();
    EXPECT_EQ(engine.kernelsLinted(), 2u);

    // A compiler-config change recompiles, so it re-lints.
    sim::SimJob split = tinyJob(sim::ProviderKind::Regless);
    split.config.compiler.splitLoadUse = false;
    engine.submit(split);
    engine.flush();
    EXPECT_EQ(engine.kernelsLinted(), 3u);
}

TEST(ExperimentEngine, LintGateRunsBeforeServingCachedResults)
{
    // The gate must fire even on a fully warm cache: a cached RunStats
    // is not evidence the kernel's annotations are sound.
    const auto dir = freshCacheDir("lint-warm");
    sim::ExperimentEngine::Options options;
    options.cacheDir = dir.string();
    {
        sim::ExperimentEngine cold(options);
        cold.submit(tinyJob(sim::ProviderKind::Regless));
        cold.flush();
        EXPECT_EQ(cold.simulated(), 1u);
    }
    options.lint = true;
    sim::ExperimentEngine warm(options);
    warm.submit(tinyJob(sim::ProviderKind::Regless));
    warm.flush();
    EXPECT_EQ(warm.simulated(), 0u);
    EXPECT_EQ(warm.cacheHits(), 1u);
    EXPECT_EQ(warm.kernelsLinted(), 1u);
}

TEST(FigureGenerators, ColdAndWarmRunsEmitIdenticalBytes)
{
    // The wrapper binary and the report driver both call runFigure on
    // the same generator, so wrapper parity reduces to this: the same
    // figure rendered from fresh simulations and from the cache must
    // be byte-identical.
    const figures::Figure *figure =
        figures::findFigure("fig03_backing_store");
    ASSERT_NE(figure, nullptr);

    const auto dir = freshCacheDir("figure-bytes");
    sim::ExperimentEngine::Options options;
    options.cacheDir = dir.string();

    std::ostringstream cold_out;
    sim::ExperimentEngine cold(options);
    figures::FigureContext cold_ctx{cold, cold_out};
    figures::runFigure(*figure, cold_ctx);
    EXPECT_GT(cold.simulated(), 0u);

    std::ostringstream warm_out;
    sim::ExperimentEngine warm(options);
    figures::FigureContext warm_ctx{warm, warm_out};
    figures::runFigure(*figure, warm_ctx);
    EXPECT_EQ(warm.simulated(), 0u);
    EXPECT_GT(warm.cacheHits(), 0u);

    EXPECT_EQ(cold_out.str(), warm_out.str());
    EXPECT_FALSE(cold_out.str().empty());
}

} // namespace
} // namespace regless
