/**
 * @file
 * Differential determinism oracle for the event-driven cycle-skip
 * engine (DESIGN.md §12). Skipping is a pure wall-clock optimisation:
 * a skip-on run must be byte-for-byte identical to the skip-off
 * reference — every RunStats field, every stall counter, the
 * serialized JSON, Chrome traces, and deadlock reports — on every
 * workload, under every registered provider, at every thread count,
 * and with fault plans active. The only permitted difference is the engine's
 * own meta-counters (skipped_cycles / skip_events), which the oracle
 * zeroes on both sides before comparing.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/fault_injector.hh"
#include "common/sim_error.hh"
#include "golden_runs.hh"
#include "sim/experiment.hh"
#include "sim/gpu_simulator.hh"
#include "sim/multi_sm.hh"
#include "sim/stats_io.hh"
#include "workloads/rodinia.hh"

namespace regless
{
namespace
{

using testutil::goldenRun;
using testutil::referenceConfig;
using testutil::withoutSkipMeta;

/** The canonical config for @a kind with the skip engine enabled. */
sim::GpuConfig
skippingConfig(sim::ProviderKind kind)
{
    sim::GpuConfig cfg = sim::GpuConfig::forProvider(kind);
    cfg.sm.cycleSkip = true;
    return cfg;
}

/** gtest param names must be [A-Za-z0-9_] ("b+tree" is not). */
std::string
paramName(const std::string &text)
{
    std::string out = text;
    for (char &c : out) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return out;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path << " missing";
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/**
 * Single-SM oracle: all 21 Rodinia workloads under every registered
 * provider. The skip-off reference comes from the shared golden-run
 * fixture, so the cases pay for each reference simulation once per
 * process.
 */
class CycleSkipOracle
    : public ::testing::TestWithParam<
          std::tuple<std::string, sim::ProviderKind>>
{
};

TEST_P(CycleSkipOracle, SkipOnMatchesSkipOffByteForByte)
{
    const auto &[name, kind] = GetParam();
    const sim::RunStats &golden = goldenRun(name, kind);
    // A skip-off run must never have touched the engine.
    EXPECT_EQ(golden.skippedCycles, 0u);
    EXPECT_EQ(golden.skipEvents, 0u);

    const sim::RunStats skipped = sim::runKernel(
        workloads::makeRodinia(name), skippingConfig(kind));

    // Field-for-field equality (operator== covers every counter,
    // stall attribution and energy included).
    EXPECT_TRUE(withoutSkipMeta(skipped) == golden) << name;
    // And byte-for-byte through the serializer, so the JSON artefacts
    // the report pipeline caches are identical too.
    EXPECT_EQ(sim::toJson(withoutSkipMeta(skipped)),
              sim::toJson(golden));
    // The closed-account invariant survives bulk charging.
    testutil::expectSlotInvariant(
        skipped, skippingConfig(kind).sm.numSchedulers, name);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CycleSkipOracle,
    ::testing::Combine(
        ::testing::ValuesIn(workloads::rodiniaNames()),
        ::testing::ValuesIn(sim::allProviderKinds())),
    [](const auto &info) {
        return paramName(std::get<0>(info.param)) + "_" +
               sim::providerName(std::get<1>(info.param));
    });

/**
 * Multi-SM oracle: the epoch loop's clamped skipping must preserve
 * the aggregate and every per-SM RunStats at any worker thread count.
 */
class MultiSmCycleSkipOracle
    : public ::testing::TestWithParam<
          std::tuple<std::string, sim::ProviderKind, unsigned>>
{
};

TEST_P(MultiSmCycleSkipOracle, TotalsAndPerSmStatsMatchSkipOff)
{
    const auto &[name, kind, threads] = GetParam();
    const ir::Kernel kernel = workloads::makeRodinia(name);
    constexpr unsigned sms = 8;

    sim::MultiSmSimulator reference(kernel, referenceConfig(kind), sms,
                                    /*threads=*/1);
    sim::MultiSmSimulator skipping(kernel, skippingConfig(kind), sms,
                                   threads);
    const sim::RunStats ref_total = reference.run();
    const sim::RunStats skip_total = skipping.run();

    EXPECT_EQ(ref_total.skippedCycles, 0u);
    EXPECT_TRUE(withoutSkipMeta(skip_total) == ref_total) << name;
    ASSERT_EQ(reference.perSm().size(), skipping.perSm().size());
    for (std::size_t i = 0; i < reference.perSm().size(); ++i) {
        EXPECT_TRUE(withoutSkipMeta(skipping.perSm()[i]) ==
                    reference.perSm()[i])
            << name << " sm" << i;
        testutil::expectSlotInvariant(
            skipping.perSm()[i], skippingConfig(kind).sm.numSchedulers,
            name + " sm" + std::to_string(i));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, MultiSmCycleSkipOracle,
    ::testing::Combine(::testing::Values(std::string("nn"),
                                         std::string("streamcluster"),
                                         std::string("hotspot")),
                       ::testing::ValuesIn(sim::allProviderKinds()),
                       ::testing::Values(1u, 8u)),
    [](const auto &info) {
        return paramName(std::get<0>(info.param)) + "_" +
               sim::providerName(std::get<1>(info.param)) + "_t" +
               std::to_string(std::get<2>(info.param));
    });

/**
 * Multi-tenant oracle (DESIGN.md §16): with co-resident kernels the
 * skip target is the minimum over every tenant provider's next event
 * and never crosses a pending suspension, so a skip-on co-run must
 * still be byte-identical to the skip-off reference — whole-SM stats
 * and every per-tenant lane.
 */
class MultiTenantCycleSkipOracle
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, sim::ProviderKind>>
{
};

TEST_P(MultiTenantCycleSkipOracle, CoRunsMatchSkipOffByteForByte)
{
    const auto &[ls, hog, kind] = GetParam();
    auto configure = [&](bool skip) {
        sim::GpuConfig cfg =
            skip ? skippingConfig(kind) : referenceConfig(kind);
        cfg.tenants.workloads = {{ls, 1}, {hog, 0}};
        return cfg;
    };
    const std::vector<ir::Kernel> kernels{workloads::makeRodinia(ls),
                                          workloads::makeRodinia(hog)};

    sim::GpuSimulator reference(kernels, configure(false));
    sim::GpuSimulator skipping(kernels, configure(true));
    const sim::RunStats ref = reference.run();
    const sim::RunStats skip = skipping.run();

    EXPECT_EQ(ref.skippedCycles, 0u);
    EXPECT_TRUE(withoutSkipMeta(skip) == ref) << ls << "+" << hog;
    EXPECT_EQ(sim::toJson(withoutSkipMeta(skip)), sim::toJson(ref));
    ASSERT_EQ(skip.tenants.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Pairings, MultiTenantCycleSkipOracle,
    ::testing::Combine(::testing::Values(std::string("nn"),
                                         std::string("backprop")),
                       ::testing::Values(std::string("srad_v1"),
                                         std::string("hotspot")),
                       ::testing::Values(sim::ProviderKind::Baseline,
                                         sim::ProviderKind::Regless)),
    [](const auto &info) {
        return paramName(std::get<0>(info.param)) + "_" +
               paramName(std::get<1>(info.param)) + "_" +
               sim::providerName(std::get<2>(info.param));
    });

TEST(MultiTenantCycleSkipQos, QosScheduleSurvivesSkipping)
{
    // The QoS controller acts at interval boundaries; skip jumps are
    // clamped to qosNextDecision() so both stepping modes observe the
    // same park/resume sequence. The whole schedule — preemption
    // counts, suspended cycles, finish cycles — must be identical.
    auto qosRun = [](bool skip) {
        sim::GpuConfig cfg =
            skip ? skippingConfig(sim::ProviderKind::Regless)
                 : referenceConfig(sim::ProviderKind::Regless);
        cfg.tenants.workloads = {{"nn", 1}, {"srad_v1", 0}};
        cfg.tenants.policy = regfile::CapacityPolicy::PriorityReserve;
        cfg.tenants.qosPreemption = true;
        cfg.tenants.qosInterval = 2000;
        cfg.tenants.qosShare = 0.25;
        const std::vector<ir::Kernel> kernels{
            workloads::makeRodinia("nn"),
            workloads::makeRodinia("srad_v1")};
        sim::GpuSimulator gpu(kernels, cfg);
        return gpu.run();
    };

    const sim::RunStats off = qosRun(false);
    const sim::RunStats on = qosRun(true);
    ASSERT_EQ(off.tenants.size(), 2u);
    // The controller must actually act in the reference run, or the
    // parity below is vacuous.
    EXPECT_GT(off.tenants[1].preemptions, 0u);
    EXPECT_GT(off.tenants[1].suspendedCycles, 0u);
    EXPECT_TRUE(withoutSkipMeta(on) == off);
    EXPECT_EQ(sim::toJson(withoutSkipMeta(on)), sim::toJson(off));
}

TEST(MultiTenantMultiSm, ThreadCountNeverChangesCoRunResults)
{
    // The determinism contract extended to tenant mode: a multi-SM
    // co-run must be bit-identical across worker thread counts, with
    // skipping on, down to every per-SM tenant lane.
    auto coRun = [](unsigned threads) {
        sim::GpuConfig cfg =
            skippingConfig(sim::ProviderKind::Regless);
        cfg.tenants.workloads = {{"nn", 1}, {"hotspot", 0}};
        const std::vector<ir::Kernel> kernels{
            workloads::makeRodinia("nn"),
            workloads::makeRodinia("hotspot")};
        return std::make_unique<sim::MultiSmSimulator>(kernels, cfg,
                                                       /*num_sms=*/4,
                                                       threads);
    };

    auto serial = coRun(1);
    auto parallel = coRun(8);
    const sim::RunStats a = serial->run();
    const sim::RunStats b = parallel->run();
    EXPECT_TRUE(a == b);
    EXPECT_EQ(sim::toJson(a), sim::toJson(b));
    ASSERT_EQ(serial->perSm().size(), parallel->perSm().size());
    for (std::size_t i = 0; i < serial->perSm().size(); ++i) {
        EXPECT_TRUE(serial->perSm()[i] == parallel->perSm()[i])
            << "sm" << i;
    }
    ASSERT_EQ(a.tenants.size(), 2u);
}

TEST(CycleSkipTrace, ChromeTracesAreByteIdentical)
{
    // Trace labels are state-derived and state is frozen across a
    // skipped window, so the RLE spans must extend across skips and
    // the emitted files must match the skip-off reference exactly.
    const ir::Kernel kernel = workloads::makeRodinia("nn");
    const std::filesystem::path dir(::testing::TempDir());

    auto traced = [&](bool skip) {
        sim::GpuConfig cfg =
            skip ? skippingConfig(sim::ProviderKind::Regless)
                 : referenceConfig(sim::ProviderKind::Regless);
        cfg.trace.enabled = true;
        cfg.trace.path =
            (dir / (std::string("regless-skip-trace-") +
                    (skip ? "on" : "off") + ".json"))
                .string();
        sim::GpuSimulator gpu(kernel, cfg);
        gpu.run();
        return readFile(cfg.trace.path + ".sm0");
    };

    const std::string off = traced(false);
    const std::string on = traced(true);
    ASSERT_FALSE(off.empty());
    EXPECT_EQ(on, off);
}

TEST(CycleSkipWatchdog, DroppedDramResponseTripsAtTheSameCycle)
{
    // A wedged run is the skip engine's hardest case: every cycle of
    // the stalled window is skipped over, yet the watchdog must fire
    // at the identical cycle with the identical last-window stall
    // breakdown (DeadlockReport operator== covers every field).
    auto wedge = [](bool skip) {
        sim::GpuConfig cfg =
            skip ? skippingConfig(sim::ProviderKind::Baseline)
                 : referenceConfig(sim::ProviderKind::Baseline);
        cfg.faults.kind = FaultPlan::Kind::DropDramResponse;
        cfg.faults.triggerCycle = 0;
        cfg.sm.watchdogWindow = 10'000;
        cfg.sm.maxCycles = 2'000'000;
        sim::GpuSimulator gpu(workloads::makeRodinia("nn"), cfg);
        try {
            gpu.run();
        } catch (const sim::DeadlockError &e) {
            return e.report();
        }
        ADD_FAILURE() << "dropped DRAM response did not wedge (skip="
                      << skip << ")";
        return sim::DeadlockReport{};
    };

    const sim::DeadlockReport off = wedge(false);
    const sim::DeadlockReport on = wedge(true);
    EXPECT_EQ(on.cycle, off.cycle);
    EXPECT_EQ(on.lastProgressCycle, off.lastProgressCycle);
    EXPECT_EQ(on.stallBreakdown, off.stallBreakdown);
    EXPECT_EQ(on.dominantStall, off.dominantStall);
    EXPECT_TRUE(on == off) << on.render() << "\nvs\n" << off.render();
}

TEST(CycleSkipWatchdog, OsuLeakDeadlockReportsAreIdentical)
{
    // Same parity check for a staging-side wedge: the leaked-slot
    // deadlock must produce the same diagnosis either way, still
    // naming cm_no_capacity as the dominant cause.
    auto starve = [](bool skip) {
        sim::GpuConfig cfg =
            skip ? skippingConfig(sim::ProviderKind::Regless)
                 : referenceConfig(sim::ProviderKind::Regless);
        cfg.faults.kind = FaultPlan::Kind::LeakOsuSlot;
        cfg.faults.triggerCycle = 0;
        cfg.sm.watchdogWindow = 5000;
        cfg.sm.maxCycles = 2'000'000;
        sim::GpuSimulator gpu(workloads::makeRodinia("nn"), cfg);
        try {
            gpu.run();
        } catch (const sim::DeadlockError &e) {
            return e.report();
        }
        ADD_FAILURE() << "leaked OSU reservations did not deadlock "
                         "(skip="
                      << skip << ")";
        return sim::DeadlockReport{};
    };

    const sim::DeadlockReport off = starve(false);
    const sim::DeadlockReport on = starve(true);
    EXPECT_EQ(on.dominantStall, "cm_no_capacity") << on.render();
    EXPECT_TRUE(on == off) << on.render() << "\nvs\n" << off.render();
}

TEST(CycleSkipEngagement, SkipsCyclesOnMemoryBoundWork)
{
    // The oracle would pass vacuously if the engine never fired; pin
    // that it collapses a meaningful share of a memory-bound run.
    const sim::RunStats skipped =
        sim::runKernel(workloads::makeRodinia("streamcluster"),
                       skippingConfig(sim::ProviderKind::Baseline));
    EXPECT_GT(skipped.skipEvents, 0u);
    EXPECT_GT(skipped.skippedCycles, 0u);
    EXPECT_EQ(skipped.cycles,
              goldenRun("streamcluster", sim::ProviderKind::Baseline)
                  .cycles);
}

TEST(CycleSkipConfig, SkipModeIsPartOfTheConfigFingerprint)
{
    // Cached experiment results must never be shared across skip
    // modes (they differ in the meta-counters), so the flag has to
    // reach the canonical config text.
    EXPECT_NE(sim::configCanonicalText(
                  referenceConfig(sim::ProviderKind::Regless)),
              sim::configCanonicalText(
                  skippingConfig(sim::ProviderKind::Regless)));
}

} // namespace
} // namespace regless
