/**
 * @file
 * Architecture tests: SIMT stack mechanics, schedulers, scoreboard,
 * and end-to-end SM runs with the baseline register file, including
 * functional-correctness checks against expected memory contents.
 */

#include <gtest/gtest.h>

#include <random>

#include "arch/scheduler.hh"
#include "arch/scoreboard.hh"
#include "arch/simt_stack.hh"
#include "arch/sm.hh"
#include "compiler/compiler.hh"
#include "mem/memory_system.hh"
#include "regfile/baseline_rf.hh"
#include "workloads/kernel_builder.hh"

namespace regless
{
namespace
{

using arch::SimtStack;
using arch::Sm;
using arch::SmConfig;
using workloads::KernelBuilder;
using workloads::Label;

TEST(SimtStackTest, StartsAtZeroFullMask)
{
    SimtStack s;
    EXPECT_EQ(s.pc(), 0u);
    EXPECT_EQ(s.activeMask(), fullMask);
    EXPECT_FALSE(s.allExited());
}

TEST(SimtStackTest, AdvanceIncrementsPc)
{
    SimtStack s;
    s.advance();
    s.advance();
    EXPECT_EQ(s.pc(), 2u);
}

TEST(SimtStackTest, UniformTakenBranch)
{
    SimtStack s;
    bool diverged = s.branch(fullMask, 10, 20);
    EXPECT_FALSE(diverged);
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStackTest, UniformNotTakenBranch)
{
    SimtStack s;
    s.advance(); // pc = 1
    bool diverged = s.branch(0, 10, 20);
    EXPECT_FALSE(diverged);
    EXPECT_EQ(s.pc(), 2u);
}

TEST(SimtStackTest, DivergenceAndReconvergence)
{
    SimtStack s;
    // At pc 0, half the lanes take a branch to 10; reconverge at 5.
    LaneMask lower = 0x0000ffffu;
    bool diverged = s.branch(lower, 10, 5);
    EXPECT_TRUE(diverged);
    // Taken side executes first.
    EXPECT_EQ(s.pc(), 10u);
    EXPECT_EQ(s.activeMask(), lower);
    EXPECT_EQ(s.depth(), 3u);

    // Taken side runs 10..11 then jumps to the reconvergence point.
    s.jump(5);
    // Now the fall-through side resumes at 1.
    EXPECT_EQ(s.pc(), 1u);
    EXPECT_EQ(s.activeMask(), ~lower);

    // Fall-through runs to the reconvergence point.
    s.advance(); // 2
    s.advance(); // 3
    s.advance(); // 4
    s.advance(); // 5 -> pops
    EXPECT_EQ(s.pc(), 5u);
    EXPECT_EQ(s.activeMask(), fullMask);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStackTest, ExitAllLanes)
{
    SimtStack s;
    s.exitLanes();
    EXPECT_TRUE(s.allExited());
    EXPECT_EQ(s.activeMask(), 0u);
}

TEST(SimtStackTest, DivergentExit)
{
    SimtStack s;
    LaneMask half = 0xffff0000u;
    s.branch(half, 10, invalidPc);
    // Taken side (upper half) exits.
    s.exitLanes();
    // Fall-through side resumes.
    EXPECT_FALSE(s.allExited());
    EXPECT_EQ(s.activeMask(), ~half);
    s.exitLanes();
    EXPECT_TRUE(s.allExited());
}

TEST(SchedulerTest, GtoSticksWithCurrentWarp)
{
    arch::GtoScheduler gto({0, 4, 8});
    std::vector<bool> all{true, true, true};
    int first = gto.pick(all);
    EXPECT_EQ(first, 0);
    EXPECT_EQ(gto.pick(all), 0);
    // When warp 0 stalls, fall to the oldest eligible.
    std::vector<bool> w0_stalled{false, true, true};
    EXPECT_EQ(gto.pick(w0_stalled), 1);
    // Greedy: stays on warp index 1 even when 0 wakes up.
    EXPECT_EQ(gto.pick(all), 1);
}

TEST(SchedulerTest, RrRotates)
{
    arch::RrScheduler rr({0, 1, 2});
    std::vector<bool> all{true, true, true};
    EXPECT_EQ(rr.pick(all), 0);
    EXPECT_EQ(rr.pick(all), 1);
    EXPECT_EQ(rr.pick(all), 2);
    EXPECT_EQ(rr.pick(all), 0);
}

TEST(SchedulerTest, TwoLevelSchedulesOnlyActivePool)
{
    arch::TwoLevelScheduler tl({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 4,
                               /*promotion_delay=*/0);
    // Warp index 9 is pending; never picked while the active 4 are
    // eligible or not.
    std::vector<bool> only9(10, false);
    only9[9] = true;
    EXPECT_EQ(tl.pick(only9), -1);
    // Demote warp 0 (id 0); 4 (index) gets promoted.
    tl.notifyLongStall(0);
    std::vector<bool> only4(10, false);
    only4[4] = true;
    EXPECT_EQ(tl.pick(only4), 4);
}

TEST(SchedulerTest, GtoSurvivesShrunkenEligibilityVector)
{
    // Regression: the greedy index sticks across calls, so a shorter
    // eligibility vector (fewer warps in the group) must not be
    // indexed at the old position.
    arch::GtoScheduler gto({0, 1, 2});
    EXPECT_EQ(gto.pick({false, false, true}), 2);
    EXPECT_EQ(gto.pick({true}), 0);
    EXPECT_EQ(gto.pick(std::vector<bool>{}), -1);
}

TEST(SchedulerTest, TwoLevelEmptyPendingDemotionIsNoOp)
{
    // Regression: with nothing pending, a demotion used to shrink the
    // active pool permanently — with one warp, to empty, after which
    // pick() returned -1 forever (scheduler starvation).
    arch::TwoLevelScheduler tl({7}, 4, /*promotion_delay=*/0);
    std::vector<bool> all{true};
    EXPECT_EQ(tl.pick(all), 0);
    tl.notifyLongStall(7);
    EXPECT_EQ(tl.activePool().size(), 1u);
    EXPECT_EQ(tl.pick(all), 0);
}

TEST(SchedulerTest, TwoLevelSurvivesDrainAndRefill)
{
    // Exercise the pending pool through full drain/refill cycles: one
    // warp pending, so every demotion drains the pool (promoting its
    // only entry) and refills it with the demoted warp. The active
    // pool must keep its size and pick() must keep issuing.
    arch::TwoLevelScheduler tl({0, 1, 2, 3, 4}, 4,
                               /*promotion_delay=*/0);
    std::vector<bool> all(5, true);
    for (unsigned round = 0; round < 20; ++round) {
        int picked = tl.pick(all);
        ASSERT_GE(picked, 0);
        tl.notifyLongStall(tl.warps()[picked]);
        ASSERT_EQ(tl.activePool().size(), 4u);
    }
    // Demoting a warp that is already pending is also a no-op.
    arch::TwoLevelScheduler tl2({0, 1}, 1, /*promotion_delay=*/0);
    tl2.notifyLongStall(1);
    EXPECT_EQ(tl2.activePool().size(), 1u);
    EXPECT_EQ(tl2.pick({true, true}), 0);
}

TEST(SchedulerTest, AllPoliciesPickOnlyEligibleWarps)
{
    // Property test over random eligibility patterns: every policy
    // either declines (-1) or returns an in-range, eligible index;
    // GTO and RR must not decline while anything is eligible, and the
    // two-level scheduler (promotion delay 0) must not decline while
    // anything *active* is eligible.
    std::mt19937 rng(2017); // fixed seed
    arch::GtoScheduler gto({0, 1, 2, 3, 4, 5, 6, 7});
    arch::TwoLevelScheduler tl({0, 1, 2, 3, 4, 5, 6, 7}, 4,
                               /*promotion_delay=*/0);
    arch::RrScheduler rr({0, 1, 2, 3, 4, 5, 6, 7});
    for (unsigned round = 0; round < 2000; ++round) {
        std::vector<bool> eligible(8);
        bool any = false;
        for (std::size_t i = 0; i < eligible.size(); ++i) {
            eligible[i] = (rng() & 3) != 0;
            any = any || eligible[i];
        }
        for (arch::WarpScheduler *sched :
             {static_cast<arch::WarpScheduler *>(&gto),
              static_cast<arch::WarpScheduler *>(&tl),
              static_cast<arch::WarpScheduler *>(&rr)}) {
            int picked = sched->pick(eligible);
            ASSERT_GE(picked, -1);
            ASSERT_LT(picked, 8);
            if (picked >= 0)
                ASSERT_TRUE(eligible[picked]);
        }
        if (any) {
            ASSERT_GE(gto.pick(eligible), 0);
            ASSERT_GE(rr.pick(eligible), 0);
        }
        bool any_active = false;
        for (unsigned idx : tl.activePool())
            any_active = any_active || eligible[idx];
        if (any_active)
            ASSERT_GE(tl.pick(eligible), 0);
        // Occasional demotions keep the pools churning.
        if ((rng() & 7) == 0)
            tl.notifyLongStall(rng() % 8);
    }
}

TEST(SchedulerTest, PolicyFromString)
{
    EXPECT_EQ(arch::schedulerPolicyFromString("gto"),
              arch::SchedulerPolicy::Gto);
    EXPECT_EQ(arch::schedulerPolicyFromString("two_level"),
              arch::SchedulerPolicy::TwoLevel);
    EXPECT_EQ(arch::schedulerPolicyFromString("rr"),
              arch::SchedulerPolicy::Rr);
}

TEST(ScoreboardTest, TracksPendingWrites)
{
    arch::Scoreboard sb(2, 8);
    ir::Instruction add(ir::Opcode::IAdd, 3, {1, 2});
    EXPECT_TRUE(sb.ready(0, add, 0));
    sb.recordWrite(0, add, 10);
    ir::Instruction use(ir::Opcode::Mov, 4, {3});
    EXPECT_FALSE(sb.ready(0, use, 5));
    EXPECT_TRUE(sb.ready(0, use, 10));
    // Other warps are unaffected.
    EXPECT_TRUE(sb.ready(1, use, 5));
    // WAW on the same destination also blocks.
    EXPECT_FALSE(sb.ready(0, add, 5));
}

/** Run a kernel on one SM with the baseline RF; return cycles. */
struct SmRun
{
    explicit SmRun(ir::Kernel k, SmConfig cfg = SmConfig())
        : ck(compiler::compile(k)),
          mem(),
          rf(),
          sm(ck, mem, rf, cfg)
    {
    }
    compiler::CompiledKernel ck;
    mem::MemorySystem mem;
    regfile::BaselineRf rf;
    Sm sm;
};

TEST(SmTest, StraightLineKernelCompletes)
{
    KernelBuilder b("straight");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId x = b.iaddi(t, 100);
    b.st(x, addr);
    SmRun run(b.build());
    Cycle cycles = run.sm.run();
    EXPECT_GT(cycles, 0u);
    EXPECT_TRUE(run.sm.done());
    // 64 warps x 5 instructions (incl. exit).
    EXPECT_EQ(run.sm.totalInsns(), 64u * 5u);
}

TEST(SmTest, StoreWritesExpectedValues)
{
    KernelBuilder b("stores");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId x = b.iaddi(t, 100);
    b.st(x, addr);
    SmRun run(b.build());
    run.sm.run();
    // Thread i stored i + 100 at dataBase + 4 * i.
    SmConfig cfg;
    for (unsigned i = 0; i < 64; ++i) {
        Addr a = cfg.dataBase + 4 * i;
        EXPECT_EQ(run.mem.readWord(a), i + 100) << "thread " << i;
    }
}

TEST(SmTest, DivergentKernelReconverges)
{
    // Lanes with tid % 2 take one path; both paths store; all lanes
    // then store a sentinel after reconvergence.
    KernelBuilder b("diverge");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId one = b.movi(1);
    RegId bit = b.band(t, one);
    Label odd = b.newLabel();
    Label join = b.newLabel();
    b.braIf(bit, odd);
    b.st(b.movi(1000), addr);
    b.jmp(join);
    b.bind(odd);
    b.st(b.movi(2000), addr);
    b.bind(join);
    b.st(b.iaddi(t, 5000), addr, 16384);
    SmRun run(b.build());
    run.sm.run();
    SmConfig cfg;
    for (unsigned i = 0; i < 64; ++i) {
        Addr a = cfg.dataBase + 4 * i;
        EXPECT_EQ(run.mem.readWord(a), i % 2 ? 2000u : 1000u);
        EXPECT_EQ(run.mem.readWord(a + 16384), 5000 + i);
    }
    EXPECT_GT(run.sm.stats().counter("divergent_branches").value(), 0u);
}

TEST(SmTest, LoopKernelComputesSum)
{
    // acc = sum(0..9) + tid, stored per thread.
    KernelBuilder b("loopsum");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId i = b.reg();
    RegId acc = b.reg();
    b.moviTo(i, 0);
    b.movTo(acc, t);
    RegId limit = b.movi(10);
    Label head = b.newLabel();
    b.bind(head);
    b.iaddTo(acc, acc, i);
    b.iaddiTo(i, i, 1);
    RegId p = b.setLt(i, limit);
    b.braIf(p, head);
    b.st(acc, addr);
    SmRun run(b.build());
    run.sm.run();
    SmConfig cfg;
    for (unsigned tid = 0; tid < 64; ++tid) {
        Addr a = cfg.dataBase + 4 * tid;
        EXPECT_EQ(run.mem.readWord(a), 45u + tid);
    }
}

TEST(SmTest, LoadUseRoundTrip)
{
    // Store then reload through global memory.
    KernelBuilder b("roundtrip");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    b.st(b.imuli(t, 3), addr);
    b.bar();
    RegId v = b.ld(addr);
    b.st(b.iaddi(v, 1), addr, 16384);
    SmRun run(b.build());
    run.sm.run();
    SmConfig cfg;
    for (unsigned tid = 0; tid < 64; ++tid) {
        Addr a = cfg.dataBase + 4 * tid + 16384;
        EXPECT_EQ(run.mem.readWord(a), 3 * tid + 1);
    }
}

TEST(SmTest, BarrierSynchronisesBlock)
{
    // Producer/consumer within a block through shared memory.
    KernelBuilder b("barrier");
    b.setWarpsPerBlock(4);
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    b.sts(b.iaddi(t, 7), addr);
    b.bar();
    RegId v = b.lds(addr);
    b.st(v, addr);
    SmRun run(b.build());
    run.sm.run();
    SmConfig cfg;
    for (unsigned tid = 0; tid < 64; ++tid) {
        Addr a = cfg.dataBase + 4 * tid;
        EXPECT_EQ(run.mem.readWord(a), tid + 7);
    }
}

TEST(SmTest, MemoryLatencyShowsInRuntime)
{
    // A dependent chain of loads is much slower than pure ALU work.
    KernelBuilder alu_b("alu");
    RegId t = alu_b.tid();
    RegId x = t;
    for (int i = 0; i < 16; ++i)
        x = alu_b.iaddi(x, 1);
    alu_b.st(x, alu_b.imuli(t, 4));

    KernelBuilder mem_b("mem");
    RegId t2 = mem_b.tid();
    RegId a2 = mem_b.imuli(t2, 4);
    RegId v = mem_b.ld(a2);
    for (int i = 0; i < 7; ++i) {
        RegId next = mem_b.band(v, mem_b.movi(0xffff));
        v = mem_b.ld(mem_b.imuli(next, 4), 128 * i);
    }
    mem_b.st(v, a2);

    SmRun alu_run(alu_b.build());
    SmRun mem_run(mem_b.build());
    Cycle alu_cycles = alu_run.sm.run();
    Cycle mem_cycles = mem_run.sm.run();
    EXPECT_GT(mem_cycles, alu_cycles);
}

TEST(SmTest, TwoLevelSchedulerAlsoCompletes)
{
    KernelBuilder b("tl");
    RegId t = b.tid();
    RegId addr = b.imuli(t, 4);
    RegId v = b.ld(addr);
    b.st(b.iaddi(v, 1), addr, 16384);
    SmConfig cfg;
    cfg.scheduler = arch::SchedulerPolicy::TwoLevel;
    SmRun run(b.build(), cfg);
    run.sm.run();
    EXPECT_TRUE(run.sm.done());
}

TEST(SmTest, WorkingSetTrackedByBaselineRf)
{
    KernelBuilder b("ws");
    RegId t = b.tid();
    RegId x = b.iaddi(t, 1);
    b.st(x, b.imuli(t, 4));
    SmRun run(b.build());
    run.sm.run();
    EXPECT_GT(run.rf.meanWorkingSetBytes(), 0.0);
    EXPECT_GT(run.rf.stats().counter("reads").value(), 0u);
    EXPECT_GT(run.rf.stats().counter("writes").value(), 0u);
}

} // namespace
} // namespace regless
