/**
 * @file
 * Unit tests for liveness: dataflow facts, last uses, and the GPU
 * divergence-aware soft-definition analysis (paper Algorithm 2).
 */

#include <gtest/gtest.h>

#include "ir/cfg_analysis.hh"
#include "ir/liveness.hh"
#include "workloads/kernel_builder.hh"

namespace regless
{
namespace
{

using workloads::KernelBuilder;
using workloads::Label;

struct Analysis
{
    explicit Analysis(ir::Kernel k)
        : kernel(std::move(k)), cfg(kernel), live(kernel, cfg)
    {
    }
    ir::Kernel kernel;
    ir::CfgAnalysis cfg;
    ir::Liveness live;
};

TEST(LivenessTest, StraightLineLastUse)
{
    KernelBuilder b("straight");
    RegId t = b.tid();          // pc 0
    RegId x = b.iaddi(t, 1);    // pc 1, reads t
    RegId y = b.imul(x, x);     // pc 2, last use of x
    b.st(y, t);                 // pc 3, last uses of y and t
    ir::Kernel k = b.build();
    Analysis a(std::move(k));

    EXPECT_TRUE(a.live.liveBefore(1, t));
    EXPECT_TRUE(a.live.liveBefore(2, x));
    EXPECT_FALSE(a.live.liveAfter(2, x));
    EXPECT_TRUE(a.live.isLastUse(2, x));
    EXPECT_FALSE(a.live.isLastUse(1, t));
    EXPECT_TRUE(a.live.isLastUse(3, t));
    EXPECT_TRUE(a.live.isLastUse(3, y));
    // Nothing is live after the store except nothing.
    EXPECT_FALSE(a.live.liveAfter(3, y));
}

TEST(LivenessTest, DefKillsValue)
{
    KernelBuilder b("kill");
    RegId t = b.tid();   // pc 0
    RegId x = b.reg();
    b.moviTo(x, 5);      // pc 1
    b.st(x, t);          // pc 2
    b.moviTo(x, 9);      // pc 3: fresh def, old x dead after pc 2
    b.st(x, t);          // pc 4
    ir::Kernel k = b.build();
    Analysis a(std::move(k));

    EXPECT_FALSE(a.live.liveAfter(2, x));
    EXPECT_TRUE(a.live.liveBefore(4, x));
    EXPECT_TRUE(a.live.isLastUse(2, x));
    EXPECT_TRUE(a.live.isLastUse(4, x));
}

TEST(LivenessTest, LiveCountTracksExpressionTemporaries)
{
    KernelBuilder b("temps");
    RegId t = b.tid();      // pc 0
    RegId a1 = b.iaddi(t, 1);
    RegId a2 = b.iaddi(t, 2);
    RegId a3 = b.iaddi(t, 3);
    RegId s1 = b.iadd(a1, a2);
    RegId s2 = b.iadd(s1, a3);
    b.st(s2, t);
    ir::Kernel k = b.build();
    Analysis a(std::move(k));

    // At the first iadd (pc 4) t, a1, a2, a3 are live.
    EXPECT_EQ(a.live.liveCountBefore(4), 4u);
    // After collapsing, before the store only s2 and t are live.
    EXPECT_EQ(a.live.liveCountBefore(6), 2u);
}

TEST(LivenessTest, LoopCarriedRegisterLiveAroundBackEdge)
{
    KernelBuilder b("loop");
    RegId i = b.reg();
    RegId acc = b.reg();
    b.moviTo(i, 0);
    b.moviTo(acc, 0);
    RegId limit = b.movi(16);
    Label head = b.newLabel();
    b.bind(head);
    b.iaddTo(acc, acc, i); // loop body start
    b.iaddiTo(i, i, 1);
    RegId p = b.setLt(i, limit);
    b.braIf(p, head);
    b.st(acc, i);
    ir::Kernel k = b.build();
    Analysis a(std::move(k));

    Pc body = 3;
    ir::BlockId body_bb = a.kernel.blockOf(body);
    // acc and i are live into and out of the loop body.
    EXPECT_TRUE(a.live.blockLiveIn(body_bb, acc));
    EXPECT_TRUE(a.live.blockLiveOut(body_bb, acc));
    EXPECT_TRUE(a.live.blockLiveOut(body_bb, i));
    // limit is live out of the body only because of the back edge.
    EXPECT_TRUE(a.live.blockLiveOut(body_bb, limit));
    // The add in the body is NOT a last use of acc.
    EXPECT_FALSE(a.live.isLastUse(body, acc));
}

/**
 * Build the paper's Figure 7 shape: a register defined before a branch,
 * conditionally redefined on one side, and used at the join.
 *
 *   r = ...            (dominating definition)
 *   if (p) r = ...     (candidate soft definition)
 *   use r              (reads either value)
 */
ir::Kernel
softDefKernel(Pc *soft_pc, RegId *reg)
{
    KernelBuilder b("softdef");
    RegId t = b.tid();
    RegId r = b.reg();
    b.moviTo(r, 7);           // dominating def, pc 1
    RegId p = b.setLt(t, b.movi(8));
    Label join = b.newLabel();
    RegId notp = b.setEq(p, b.movi(0));
    b.braIf(notp, join);
    *soft_pc = b.here();
    b.moviTo(r, 9);           // soft def: only lanes with tid < 8
    b.bind(join);
    b.st(r, t);
    *reg = r;
    return b.build();
}

TEST(SoftDefTest, PartialRedefinitionIsSoft)
{
    Pc soft_pc = 0;
    RegId r = 0;
    ir::Kernel k = softDefKernel(&soft_pc, &r);
    Analysis a(std::move(k));

    EXPECT_TRUE(a.live.isSoftDef(soft_pc));
    EXPECT_TRUE(a.live.hasSoftDef(r));
    // The dominating definition itself is not soft.
    EXPECT_FALSE(a.live.isSoftDef(1));
    // Corrected liveness: r stays live across the soft definition.
    EXPECT_TRUE(a.live.liveBefore(soft_pc, r));
}

TEST(SoftDefTest, FullDiamondRedefinitionIsNotSoft)
{
    // Both sides of the branch define r; the old value never survives.
    KernelBuilder b("diamond");
    RegId t = b.tid();
    RegId r = b.reg();
    RegId p = b.setLt(t, b.movi(8));
    Label else_l = b.newLabel();
    Label join = b.newLabel();
    RegId notp = b.setEq(p, b.movi(0));
    b.braIf(notp, else_l);
    Pc then_def = b.here();
    b.moviTo(r, 1);
    b.jmp(join);
    b.bind(else_l);
    Pc else_def = b.here();
    b.moviTo(r, 2);
    b.bind(join);
    b.st(r, t);
    ir::Kernel k = b.build();
    Analysis a(std::move(k));

    // No dominating definition exists, so neither def can be soft: no
    // other value reaches the join.
    EXPECT_FALSE(a.live.isSoftDef(then_def));
    EXPECT_FALSE(a.live.isSoftDef(else_def));
    EXPECT_FALSE(a.live.hasSoftDef(r));
}

TEST(SoftDefTest, StraightLineRedefinitionIsNotSoft)
{
    KernelBuilder b("redef");
    RegId t = b.tid();
    RegId r = b.reg();
    b.moviTo(r, 1);
    b.st(r, t);
    Pc redef = b.here();
    b.moviTo(r, 2); // full redefinition, no divergence
    b.st(r, t);
    ir::Kernel k = b.build();
    Analysis a(std::move(k));
    EXPECT_FALSE(a.live.isSoftDef(redef));
}

TEST(SoftDefTest, SoftDefKeepsRegionInputSemantics)
{
    // The corrected analysis must treat the soft def as a use, so the
    // value is live on entry to the redefining block.
    Pc soft_pc = 0;
    RegId r = 0;
    ir::Kernel k = softDefKernel(&soft_pc, &r);
    Analysis a(std::move(k));
    ir::BlockId soft_bb = a.kernel.blockOf(soft_pc);
    EXPECT_TRUE(a.live.blockLiveIn(soft_bb, r));
}

TEST(LivenessTest, DefsAndUsesIndexes)
{
    KernelBuilder b("indexes");
    RegId t = b.tid(); // def of t at 0
    RegId x = b.iaddi(t, 3);
    b.st(x, t);
    ir::Kernel k = b.build();
    Analysis a(std::move(k));

    ASSERT_EQ(a.live.defsOf(t).size(), 1u);
    EXPECT_EQ(a.live.defsOf(t)[0], 0u);
    EXPECT_EQ(a.live.usesOf(t).size(), 2u);
    EXPECT_EQ(a.live.usesOf(x).size(), 1u);
}

TEST(LivenessTest, UsedRegsDeduplicates)
{
    ir::Instruction sq(ir::Opcode::IMul, 5, {3, 3});
    auto regs = ir::Liveness::usedRegs(sq);
    ASSERT_EQ(regs.size(), 1u);
    EXPECT_EQ(regs[0], 3);
}

} // namespace
} // namespace regless
